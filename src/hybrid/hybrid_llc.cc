#include "hybrid/hybrid_llc.hh"

#include "common/logging.hh"
#include "common/metrics.hh"
#include "compression/encoding.hh"

namespace hllc::hybrid
{

namespace
{

/**
 * Every counter the LLC can ever bump. Pre-registering them in the
 * constructor means a counter that legitimately stays at zero (e.g. no
 * bypasses this run) still exists, so StatGroup::counterValue can treat
 * an unknown name as the error it is instead of silently returning 0.
 */
constexpr const char *llcCounterNames[] = {
    "aged_out",
    "bypasses",
    "evictions_nvm",
    "evictions_sram",
    "gets",
    "gets_hits_nvm",
    "gets_hits_sram",
    "gets_misses",
    "getx",
    "getx_hits_nvm",
    "getx_hits_sram",
    "getx_misses",
    "inplace_updates",
    "ins_none_clean",
    "ins_none_dirty",
    "ins_read_clean",
    "ins_read_dirty",
    "ins_write_clean",
    "ins_write_dirty",
    "insert_nvm_fallback_sram",
    "inserts_nvm",
    "inserts_sram",
    "invalidate_on_getx",
    "migrations_to_nvm",
    "nvm_bytes_none_clean",
    "nvm_bytes_none_dirty",
    "nvm_bytes_read",
    "nvm_bytes_write_reuse",
    "nvm_bytes_written",
    "nvm_writes",
    "puts_clean",
    "puts_dirty",
    "puts_present",
    "writebacks_dirty",
};

} // namespace

HybridLlc::HybridLlc(const HybridLlcConfig &config,
                     fault::FaultMap *fault_map)
    : config_(config),
      policy_(InsertionPolicy::create(config.policy, config.params)),
      faultMap_(fault_map),
      lines_(static_cast<std::size_t>(config.numSets) *
             config.totalWays()),
      lru_(config.numSets, config.totalWays()),
      stats_(std::string("llc_") + std::string(policy_->name()))
{
    HLLC_ASSERT(config.numSets > 0 &&
                (config.numSets & (config.numSets - 1)) == 0,
                "numSets must be a power of two");
    HLLC_ASSERT(config.totalWays() > 0);

    if (config.nvmWays > 0) {
        HLLC_ASSERT(faultMap_ != nullptr,
                    "NVM ways require a fault map");
        HLLC_ASSERT(faultMap_->geometry().numSets == config.numSets &&
                    faultMap_->geometry().numNvmWays == config.nvmWays,
                    "fault-map geometry mismatch");
        HLLC_ASSERT(faultMap_->granularity() == policy_->granularity(),
                    "policy %s needs %s disabling",
                    std::string(policy_->name()).c_str(),
                    policy_->usesCompression() ? "byte" : "frame");
    }

    if (policy_->usesSetDueling()) {
        dueling_ = std::make_unique<SetDueling>(
            config.numSets, compression::cpthCandidates(),
            config.epochCycles, policy_->thPercent(),
            policy_->twPercent());
    }

    for (const char *name : llcCounterNames)
        stats_.counter(name);
}

unsigned
HybridLlc::frameCapacity(std::uint32_t set, std::uint32_t way) const
{
    if (!isNvmWay(way))
        return blockBytes;
    return faultMap_->frameCapacity(frameOf(set, way));
}

unsigned
HybridLlc::storedSize(std::uint32_t way, unsigned ecb) const
{
    // SRAM stores blocks uncompressed; NVM stores the ECB when the policy
    // compresses, raw frames otherwise.
    if (isNvmWay(way) && policy_->usesCompression())
        return ecb;
    return blockBytes;
}

int
HybridLlc::findWay(std::uint32_t set, Addr block) const
{
    for (std::uint32_t w = 0; w < config_.totalWays(); ++w) {
        const Line &l = line(set, w);
        if (l.valid && l.blockNum == block)
            return static_cast<int>(w);
    }
    return -1;
}

int
HybridLlc::victimWay(std::uint32_t set, std::uint32_t begin,
                     std::uint32_t end, unsigned ecb)
{
    metrics::ScopedPhaseTimer timer(metrics::Phase::Replacement);

    // Empty frames with enough capacity first...
    for (std::uint32_t w = begin; w < end; ++w) {
        if (!line(set, w).valid &&
            frameCapacity(set, w) >= storedSize(w, ecb)) {
            return static_cast<int>(w);
        }
    }

    const auto fits = [&](std::uint32_t w) {
        return line(set, w).valid &&
               frameCapacity(set, w) >= storedSize(w, ecb);
    };

    if (config_.replacement == ReplacementKind::Srrip) {
        // SRRIP: evict the first fitting line predicted re-referenced
        // in the distant future; age everyone until one exists.
        bool any_fits = false;
        for (std::uint32_t w = begin; w < end; ++w)
            any_fits = any_fits || fits(w);
        if (!any_fits)
            return -1;
        for (unsigned round = 0; round <= maxRrpv; ++round) {
            for (std::uint32_t w = begin; w < end; ++w) {
                if (fits(w) && line(set, w).rrpv >= maxRrpv)
                    return static_cast<int>(w);
            }
            for (std::uint32_t w = begin; w < end; ++w) {
                Line &l = line(set, w);
                if (l.valid && l.rrpv < maxRrpv)
                    ++l.rrpv;
            }
        }
        panic("SRRIP victim scan did not converge");
    }

    // ...then the LRU line among frames the block fits in (Fit-LRU).
    return lru_.lruWay(set, begin, end, fits);
}

void
HybridLlc::evict(std::uint32_t set, std::uint32_t way)
{
    Line &l = line(set, way);
    if (!l.valid)
        return;
    ++stats_.counter(isNvmWay(way) ? "evictions_nvm" : "evictions_sram");
    if (l.dirty)
        ++stats_.counter("writebacks_dirty");
    if (probe_)
        probe_->onEvict(set, way, l.blockNum, l.dirty, isNvmWay(way));
    l.valid = false;
    l.dirty = false;
}

void
HybridLlc::writeLine(std::uint32_t set, std::uint32_t way, Addr block,
                     bool dirty, unsigned ecb)
{
    // Byte attribution for the write-traffic breakdown studies.
    if (isNvmWay(way)) {
        const char *bucket;
        switch (tracker_.classOf(block)) {
          case ReuseClass::None:
            bucket = dirty ? "nvm_bytes_none_dirty"
                           : "nvm_bytes_none_clean";
            break;
          case ReuseClass::Read:
            bucket = "nvm_bytes_read";
            break;
          default:
            bucket = "nvm_bytes_write_reuse";
            break;
        }
        stats_.counter(bucket) += storedSize(way, ecb);
    }
    Line &l = line(set, way);
    HLLC_ASSERT(!l.valid, "writeLine over a live resident");

    const unsigned stored = storedSize(way, ecb);
    HLLC_ASSERT(frameCapacity(set, way) >= stored,
                "block (%u B) does not fit frame (%u B)",
                stored, frameCapacity(set, way));

    l.blockNum = block;
    l.valid = true;
    l.dirty = dirty;
    l.ecbBytes = static_cast<std::uint8_t>(ecb);
    l.rrpv = maxRrpv - 1; // SRRIP long re-reference insertion
    lru_.touch(set, way);

    if (isNvmWay(way)) {
        faultMap_->recordWrite(frameOf(set, way), stored);
        ++stats_.counter("nvm_writes");
        stats_.counter("nvm_bytes_written") += stored;
        ++stats_.counter("inserts_nvm");
        if (dueling_)
            dueling_->recordNvmBytes(set, stored);
    } else {
        ++stats_.counter("inserts_sram");
    }
    if (probe_)
        probe_->onFill(set, way, block, dirty, stored, isNvmWay(way));
}

void
HybridLlc::migrateToNvm(std::uint32_t set, std::uint32_t way)
{
    Line &l = line(set, way);
    HLLC_ASSERT(l.valid && !isNvmWay(way));

    const Addr block = l.blockNum;
    const bool dirty = l.dirty;
    const unsigned ecb = l.ecbBytes;

    const int nvm_way = config_.nvmWays == 0
        ? -1
        : victimWay(set, config_.sramWays, config_.totalWays(), ecb);
    if (nvm_way < 0) {
        // No NVM frame can take it: plain eviction.
        evict(set, way);
        return;
    }

    // Free the SRAM way without writeback (the block stays in the LLC).
    l.valid = false;
    l.dirty = false;
    ++stats_.counter("evictions_sram");
    if (probe_)
        probe_->onMigrateFree(set, way, block);

    evict(set, static_cast<std::uint32_t>(nvm_way));
    writeLine(set, static_cast<std::uint32_t>(nvm_way), block, dirty, ecb);
    ++stats_.counter("migrations_to_nvm");
}

void
HybridLlc::insert(Addr block, bool dirty, unsigned ecb)
{
    const std::uint32_t set = setOf(block);
    const unsigned cpth = dueling_ ? dueling_->cpthForSet(set)
                                   : config_.params.fixedCpth;
    const InsertContext ctx{
        block, dirty, ecb, tracker_.classOf(block),
        tracker_.hitsOf(block), set, cpth,
    };

    // Insertion-mix accounting (motivation studies / debugging).
    switch (ctx.reuse) {
      case ReuseClass::None:
        ++stats_.counter(dirty ? "ins_none_dirty" : "ins_none_clean");
        break;
      case ReuseClass::Read:
        ++stats_.counter(dirty ? "ins_read_dirty" : "ins_read_clean");
        break;
      case ReuseClass::Write:
        ++stats_.counter(dirty ? "ins_write_dirty" : "ins_write_clean");
        break;
    }

    if (policy_->globalReplacement()) {
        // BH / BH_CP / SRAM bounds: one (Fit-)LRU across all ways.
        const int way = victimWay(set, 0, config_.totalWays(), ecb);
        if (way < 0) {
            // Every live frame is too small: bypass the LLC.
            ++stats_.counter("bypasses");
            if (dirty)
                ++stats_.counter("writebacks_dirty");
            if (probe_)
                probe_->onBypass(block, dirty);
            return;
        }
        evict(set, static_cast<std::uint32_t>(way));
        writeLine(set, static_cast<std::uint32_t>(way), block, dirty, ecb);
        return;
    }

    Part part = policy_->choosePart(ctx);

    if (part == Part::Nvm) {
        const int way = config_.nvmWays == 0
            ? -1
            : victimWay(set, config_.sramWays, config_.totalWays(), ecb);
        if (way >= 0) {
            evict(set, static_cast<std::uint32_t>(way));
            writeLine(set, static_cast<std::uint32_t>(way), block, dirty,
                      ecb);
            return;
        }
        // Doesn't fit in any NVM frame of the set: fall back to SRAM
        // (paper Sec. IV-B).
        ++stats_.counter("insert_nvm_fallback_sram");
        part = Part::Sram;
    }

    if (config_.sramWays == 0) {
        ++stats_.counter("bypasses");
        if (dirty)
            ++stats_.counter("writebacks_dirty");
        if (probe_)
            probe_->onBypass(block, dirty);
        return;
    }

    // SRAM insertion. Look for an empty way first.
    int way = -1;
    for (std::uint32_t w = 0; w < config_.sramWays; ++w) {
        if (!line(set, w).valid) {
            way = static_cast<int>(w);
            break;
        }
    }

    if (way < 0) {
        if (policy_->lhybridSramReplacement()) {
            // LHybrid: migrate the MRU loop-block to NVM to free a frame;
            // otherwise evict the LRU (paper Sec. II-C).
            const int lb_way =
                lru_.mruWay(set, 0, config_.sramWays,
                            [&](std::uint32_t w) {
                                const Line &l = line(set, w);
                                return l.valid && !l.dirty &&
                                       tracker_.classOf(l.blockNum) ==
                                           ReuseClass::Read;
                            });
            if (lb_way >= 0) {
                migrateToNvm(set, static_cast<std::uint32_t>(lb_way));
                way = lb_way;
            } else {
                way = lru_.lruWay(set, 0, config_.sramWays,
                                  [](std::uint32_t) { return true; });
            }
        } else {
            way = lru_.lruWay(set, 0, config_.sramWays,
                              [](std::uint32_t) { return true; });
            HLLC_ASSERT(way >= 0);
            const Line &victim = line(set, static_cast<std::uint32_t>(way));
            if (policy_->migrateReadReuseOnSramEviction() && victim.valid &&
                tracker_.classOf(victim.blockNum) == ReuseClass::Read) {
                // CA_RWR: a read-reused SRAM victim moves to NVM instead
                // of leaving the LLC (paper Sec. IV-B).
                migrateToNvm(set, static_cast<std::uint32_t>(way));
            }
        }
    }

    HLLC_ASSERT(way >= 0);
    evict(set, static_cast<std::uint32_t>(way));
    writeLine(set, static_cast<std::uint32_t>(way), block, dirty, ecb);
}

AccessOutcome
HybridLlc::onGetS(Addr block)
{
    const std::uint32_t set = setOf(block);
    const int way = findWay(set, block);
    ++stats_.counter("gets");

    if (way < 0) {
        // Miss: the block is fetched from memory straight into L2 and its
        // reuse history restarts (Sec. III-A).
        tracker_.onMemoryFetch(block);
        ++stats_.counter("gets_misses");
        return AccessOutcome::Miss;
    }

    Line &l = line(set, static_cast<std::uint32_t>(way));
    tracker_.onLlcHit(block, /*getx=*/false, l.dirty);
    l.rrpv = 0;
    lru_.touch(set, static_cast<std::uint32_t>(way));
    if (dueling_)
        dueling_->recordHit(set);

    if (isNvmWay(static_cast<std::uint32_t>(way))) {
        ++stats_.counter("gets_hits_nvm");
        return AccessOutcome::HitNvm;
    }
    ++stats_.counter("gets_hits_sram");
    return AccessOutcome::HitSram;
}

AccessOutcome
HybridLlc::onGetX(Addr block)
{
    const std::uint32_t set = setOf(block);
    const int way = findWay(set, block);
    ++stats_.counter("getx");

    if (way < 0) {
        tracker_.onMemoryFetch(block);
        ++stats_.counter("getx_misses");
        return AccessOutcome::Miss;
    }

    Line &l = line(set, static_cast<std::uint32_t>(way));
    tracker_.onLlcHit(block, /*getx=*/true, l.dirty);
    if (dueling_)
        dueling_->recordHit(set);

    // Invalidate-on-hit: ownership moves to the private levels; the dirty
    // block will be Put back on L2 eviction (Sec. III-A).
    const bool nvm = isNvmWay(static_cast<std::uint32_t>(way));
    l.valid = false;
    l.dirty = false;
    ++stats_.counter("invalidate_on_getx");

    if (nvm) {
        ++stats_.counter("getx_hits_nvm");
        return AccessOutcome::HitNvm;
    }
    ++stats_.counter("getx_hits_sram");
    return AccessOutcome::HitSram;
}

void
HybridLlc::onPut(Addr block, bool dirty, unsigned ecb_bytes)
{
    HLLC_ASSERT(ecb_bytes >= 2 && ecb_bytes <= blockBytes,
                "implausible ECB size %u", ecb_bytes);
    ++stats_.counter(dirty ? "puts_dirty" : "puts_clean");

    const std::uint32_t set = setOf(block);
    const int way = findWay(set, block);

    if (way >= 0) {
        // Already resident (the usual case for clean L2 victims whose
        // copy survived in the LLC): no write needed.
        ++stats_.counter("puts_present");
        Line &l = line(set, static_cast<std::uint32_t>(way));
        l.rrpv = 0;
        lru_.touch(set, static_cast<std::uint32_t>(way));
        if (!dirty)
            return;
        // A dirty Put over a (stale) resident copy rewrites it in place
        // when the frame still fits the new contents.
        const auto uway = static_cast<std::uint32_t>(way);
        const unsigned stored = storedSize(uway, ecb_bytes);
        if (frameCapacity(set, uway) >= stored) {
            l.dirty = true;
            l.ecbBytes = static_cast<std::uint8_t>(ecb_bytes);
            if (isNvmWay(uway)) {
                faultMap_->recordWrite(frameOf(set, uway), stored);
                ++stats_.counter("nvm_writes");
                stats_.counter("nvm_bytes_written") += stored;
                if (dueling_)
                    dueling_->recordNvmBytes(set, stored);
            }
            ++stats_.counter("inplace_updates");
            if (probe_)
                probe_->onInplaceUpdate(set, uway, block, stored,
                                        isNvmWay(uway));
            return;
        }
        // Grew past the frame's capacity: relocate.
        if (probe_)
            probe_->onRelocate(set, uway, block);
        l.valid = false;
        l.dirty = false;
    }

    insert(block, dirty, ecb_bytes);
}

AccessOutcome
HybridLlc::handle(const LlcEvent &event)
{
    tick(config_.cyclesPerEvent);
    switch (event.type) {
      case LlcEventType::GetS:
        return onGetS(event.blockNum);
      case LlcEventType::GetX:
        return onGetX(event.blockNum);
      case LlcEventType::PutClean:
        onPut(event.blockNum, false, event.ecbBytes);
        return AccessOutcome::Miss;
      case LlcEventType::PutDirty:
        onPut(event.blockNum, true, event.ecbBytes);
        return AccessOutcome::Miss;
    }
    panic("unknown LLC event type");
}

void
HybridLlc::tick(Cycle cycles)
{
    if (dueling_)
        dueling_->tick(cycles);
}

bool
HybridLlc::contains(Addr block) const
{
    return findWay(setOf(block), block) >= 0;
}

std::optional<Part>
HybridLlc::partOf(Addr block) const
{
    const int way = findWay(setOf(block), block);
    if (way < 0)
        return std::nullopt;
    return isNvmWay(static_cast<std::uint32_t>(way)) ? Part::Nvm
                                                     : Part::Sram;
}

unsigned
HybridLlc::cpthForSet(std::uint32_t set) const
{
    return dueling_ ? dueling_->cpthForSet(set) : config_.params.fixedCpth;
}

std::uint64_t
HybridLlc::demandHits() const
{
    return stats_.counterValue("gets_hits_sram") +
           stats_.counterValue("gets_hits_nvm") +
           stats_.counterValue("getx_hits_sram") +
           stats_.counterValue("getx_hits_nvm");
}

std::uint64_t
HybridLlc::demandAccesses() const
{
    return stats_.counterValue("gets") + stats_.counterValue("getx");
}

double
HybridLlc::hitRate() const
{
    const std::uint64_t accesses = demandAccesses();
    return accesses == 0
        ? 0.0
        : static_cast<double>(demandHits()) /
          static_cast<double>(accesses);
}

void
HybridLlc::revalidateAgainstFaultMap()
{
    if (config_.nvmWays == 0)
        return;
    for (std::uint32_t set = 0; set < config_.numSets; ++set) {
        for (std::uint32_t w = config_.sramWays; w < config_.totalWays();
             ++w) {
            Line &l = line(set, w);
            if (!l.valid)
                continue;
            const unsigned stored = storedSize(w, l.ecbBytes);
            if (frameCapacity(set, w) < stored) {
                l.valid = false;
                l.dirty = false;
                ++stats_.counter("aged_out");
            }
        }
    }
}

void
HybridLlc::reset()
{
    for (auto &l : lines_) {
        l.valid = false;
        l.dirty = false;
    }
    tracker_.clear();
}

} // namespace hllc::hybrid
