#include "hybrid/hybrid_llc.hh"

#include <algorithm>

#include "common/logging.hh"
#include "compression/encoding.hh"

namespace hllc::hybrid
{

namespace
{

/**
 * Every counter the LLC can ever bump. Pre-registering them in the
 * constructor means a counter that legitimately stays at zero (e.g. no
 * bypasses this run) still exists, so StatGroup::counterValue can treat
 * an unknown name as the error it is instead of silently returning 0.
 */
constexpr const char *llcCounterNames[] = {
    "aged_out",
    "bypasses",
    "evictions_nvm",
    "evictions_sram",
    "gets",
    "gets_hits_nvm",
    "gets_hits_sram",
    "gets_misses",
    "getx",
    "getx_hits_nvm",
    "getx_hits_sram",
    "getx_misses",
    "inplace_updates",
    "ins_none_clean",
    "ins_none_dirty",
    "ins_read_clean",
    "ins_read_dirty",
    "ins_write_clean",
    "ins_write_dirty",
    "insert_nvm_fallback_sram",
    "inserts_nvm",
    "inserts_sram",
    "invalidate_on_getx",
    "migrations_to_nvm",
    "nvm_bytes_none_clean",
    "nvm_bytes_none_dirty",
    "nvm_bytes_read",
    "nvm_bytes_write_reuse",
    "nvm_bytes_written",
    "nvm_writes",
    "puts_clean",
    "puts_dirty",
    "puts_present",
    "writebacks_dirty",
};

} // namespace

HybridLlc::HybridLlc(const HybridLlcConfig &config,
                     fault::FaultMap *fault_map)
    : config_(config),
      policy_(InsertionPolicy::create(config.policy, config.params)),
      engine_(*policy_, config.params),
      faultMap_(fault_map),
      ways_(config.totalWays()),
      tags_(static_cast<std::size_t>(config.numSets) *
            config.totalWays(), 0),
      valid_(tags_.size(), 0),
      dirty_(tags_.size(), 0),
      ecb_(tags_.size(), 0),
      rrpv_(tags_.size(), 0),
      lru_(config.numSets, config.totalWays()),
      stats_(std::string("llc_") + std::string(policy_->name()))
{
    HLLC_ASSERT(config.numSets > 0 &&
                (config.numSets & (config.numSets - 1)) == 0,
                "numSets must be a power of two");
    HLLC_ASSERT(config.totalWays() > 0);

    if (config.nvmWays > 0) {
        HLLC_ASSERT(faultMap_ != nullptr,
                    "NVM ways require a fault map");
        HLLC_ASSERT(faultMap_->geometry().numSets == config.numSets &&
                    faultMap_->geometry().numNvmWays == config.nvmWays,
                    "fault-map geometry mismatch");
        HLLC_ASSERT(faultMap_->granularity() == policy_->granularity(),
                    "policy %s needs %s disabling",
                    std::string(policy_->name()).c_str(),
                    policy_->usesCompression() ? "byte" : "frame");
    }

    if (policy_->usesSetDueling()) {
        dueling_ = std::make_unique<SetDueling>(
            config.numSets, compression::cpthCandidates(),
            config.epochCycles, policy_->thPercent(),
            policy_->twPercent());
    }

    for (const char *name : llcCounterNames)
        stats_.counter(name);

    ctr_.agedOut = &stats_.counter("aged_out");
    ctr_.bypasses = &stats_.counter("bypasses");
    ctr_.evictionsNvm = &stats_.counter("evictions_nvm");
    ctr_.evictionsSram = &stats_.counter("evictions_sram");
    ctr_.gets = &stats_.counter("gets");
    ctr_.getsHitsNvm = &stats_.counter("gets_hits_nvm");
    ctr_.getsHitsSram = &stats_.counter("gets_hits_sram");
    ctr_.getsMisses = &stats_.counter("gets_misses");
    ctr_.getx = &stats_.counter("getx");
    ctr_.getxHitsNvm = &stats_.counter("getx_hits_nvm");
    ctr_.getxHitsSram = &stats_.counter("getx_hits_sram");
    ctr_.getxMisses = &stats_.counter("getx_misses");
    ctr_.inplaceUpdates = &stats_.counter("inplace_updates");
    ctr_.insNoneClean = &stats_.counter("ins_none_clean");
    ctr_.insNoneDirty = &stats_.counter("ins_none_dirty");
    ctr_.insReadClean = &stats_.counter("ins_read_clean");
    ctr_.insReadDirty = &stats_.counter("ins_read_dirty");
    ctr_.insWriteClean = &stats_.counter("ins_write_clean");
    ctr_.insWriteDirty = &stats_.counter("ins_write_dirty");
    ctr_.insertNvmFallbackSram =
        &stats_.counter("insert_nvm_fallback_sram");
    ctr_.insertsNvm = &stats_.counter("inserts_nvm");
    ctr_.insertsSram = &stats_.counter("inserts_sram");
    ctr_.invalidateOnGetx = &stats_.counter("invalidate_on_getx");
    ctr_.migrationsToNvm = &stats_.counter("migrations_to_nvm");
    ctr_.nvmBytesNoneClean = &stats_.counter("nvm_bytes_none_clean");
    ctr_.nvmBytesNoneDirty = &stats_.counter("nvm_bytes_none_dirty");
    ctr_.nvmBytesRead = &stats_.counter("nvm_bytes_read");
    ctr_.nvmBytesWriteReuse = &stats_.counter("nvm_bytes_write_reuse");
    ctr_.nvmBytesWritten = &stats_.counter("nvm_bytes_written");
    ctr_.nvmWrites = &stats_.counter("nvm_writes");
    ctr_.putsClean = &stats_.counter("puts_clean");
    ctr_.putsDirty = &stats_.counter("puts_dirty");
    ctr_.putsPresent = &stats_.counter("puts_present");
    ctr_.writebacksDirty = &stats_.counter("writebacks_dirty");
}

unsigned
HybridLlc::frameCapacity(std::uint32_t set, std::uint32_t way) const
{
    if (!isNvmWay(way))
        return blockBytes;
    return faultMap_->frameCapacity(frameOf(set, way));
}

int
HybridLlc::findWay(std::uint32_t set, Addr block) const
{
    const std::size_t base = index(set, 0);
    const Addr *tags = tags_.data() + base;
    const std::uint8_t *valid = valid_.data() + base;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (valid[w] && tags[w] == block)
            return static_cast<int>(w);
    }
    return -1;
}

int
HybridLlc::victimWay(std::uint32_t set, std::uint32_t begin,
                     std::uint32_t end, unsigned ecb)
{
    // Empty frames with enough capacity first...
    for (std::uint32_t w = begin; w < end; ++w) {
        if (!valid_[index(set, w)] &&
            frameCapacity(set, w) >= storedSize(w, ecb)) {
            return static_cast<int>(w);
        }
    }

    const auto fits = [&](std::uint32_t w) {
        return valid_[index(set, w)] != 0 &&
               frameCapacity(set, w) >= storedSize(w, ecb);
    };

    if (config_.replacement == ReplacementKind::Srrip) {
        // SRRIP: evict the first fitting line predicted re-referenced
        // in the distant future; age everyone until one exists.
        bool any_fits = false;
        for (std::uint32_t w = begin; w < end; ++w)
            any_fits = any_fits || fits(w);
        if (!any_fits)
            return -1;
        for (unsigned round = 0; round <= maxRrpv; ++round) {
            for (std::uint32_t w = begin; w < end; ++w) {
                if (fits(w) && rrpv_[index(set, w)] >= maxRrpv)
                    return static_cast<int>(w);
            }
            for (std::uint32_t w = begin; w < end; ++w) {
                const std::size_t i = index(set, w);
                if (valid_[i] && rrpv_[i] < maxRrpv)
                    ++rrpv_[i];
            }
        }
        panic("SRRIP victim scan did not converge");
    }

    // ...then the LRU line among frames the block fits in (Fit-LRU).
    return lru_.lruWay(set, begin, end, fits);
}

void
HybridLlc::evict(std::uint32_t set, std::uint32_t way)
{
    const std::size_t i = index(set, way);
    if (!valid_[i])
        return;
    ++*(isNvmWay(way) ? ctr_.evictionsNvm : ctr_.evictionsSram);
    if (dirty_[i])
        ++*ctr_.writebacksDirty;
    if (probe_)
        probe_->onEvict(set, way, tags_[i], dirty_[i] != 0,
                        isNvmWay(way));
    valid_[i] = 0;
    dirty_[i] = 0;
}

void
HybridLlc::writeLine(std::uint32_t set, std::uint32_t way, Addr block,
                     bool dirty, unsigned ecb)
{
    // Byte attribution for the write-traffic breakdown studies.
    if (isNvmWay(way)) {
        Counter *bucket;
        switch (tracker_.classOf(block)) {
          case ReuseClass::None:
            bucket = dirty ? ctr_.nvmBytesNoneDirty
                           : ctr_.nvmBytesNoneClean;
            break;
          case ReuseClass::Read:
            bucket = ctr_.nvmBytesRead;
            break;
          default:
            bucket = ctr_.nvmBytesWriteReuse;
            break;
        }
        *bucket += storedSize(way, ecb);
    }
    const std::size_t i = index(set, way);
    HLLC_ASSERT(!valid_[i], "writeLine over a live resident");

    const unsigned stored = storedSize(way, ecb);
    HLLC_ASSERT(frameCapacity(set, way) >= stored,
                "block (%u B) does not fit frame (%u B)",
                stored, frameCapacity(set, way));

    tags_[i] = block;
    valid_[i] = 1;
    dirty_[i] = dirty ? 1 : 0;
    ecb_[i] = static_cast<std::uint8_t>(ecb);
    rrpv_[i] = maxRrpv - 1; // SRRIP long re-reference insertion
    lru_.touch(set, way);

    if (isNvmWay(way)) {
        faultMap_->recordWrite(frameOf(set, way), stored);
        ++*ctr_.nvmWrites;
        *ctr_.nvmBytesWritten += stored;
        ++*ctr_.insertsNvm;
        if (dueling_)
            dueling_->recordNvmBytes(set, stored);
    } else {
        ++*ctr_.insertsSram;
    }
    if (probe_)
        probe_->onFill(set, way, block, dirty, stored, isNvmWay(way));
}

void
HybridLlc::migrateToNvm(std::uint32_t set, std::uint32_t way)
{
    const std::size_t i = index(set, way);
    HLLC_ASSERT(valid_[i] && !isNvmWay(way));

    const Addr block = tags_[i];
    const bool dirty = dirty_[i] != 0;
    const unsigned ecb = ecb_[i];

    const int nvm_way = config_.nvmWays == 0
        ? -1
        : victimWay(set, config_.sramWays, ways_, ecb);
    if (nvm_way < 0) {
        // No NVM frame can take it: plain eviction.
        evict(set, way);
        return;
    }

    // Free the SRAM way without writeback (the block stays in the LLC).
    valid_[i] = 0;
    dirty_[i] = 0;
    ++*ctr_.evictionsSram;
    if (probe_)
        probe_->onMigrateFree(set, way, block);

    evict(set, static_cast<std::uint32_t>(nvm_way));
    writeLine(set, static_cast<std::uint32_t>(nvm_way), block, dirty, ecb);
    ++*ctr_.migrationsToNvm;
}

void
HybridLlc::insert(Addr block, bool dirty, unsigned ecb)
{
    const std::uint32_t set = setOf(block);
    const unsigned cpth = dueling_ ? dueling_->cpthForSet(set)
                                   : config_.params.fixedCpth;
    const InsertContext ctx{
        block, dirty, ecb, tracker_.classOf(block),
        tracker_.hitsOf(block), set, cpth,
    };

    // Insertion-mix accounting (motivation studies / debugging).
    switch (ctx.reuse) {
      case ReuseClass::None:
        ++*(dirty ? ctr_.insNoneDirty : ctr_.insNoneClean);
        break;
      case ReuseClass::Read:
        ++*(dirty ? ctr_.insReadDirty : ctr_.insReadClean);
        break;
      case ReuseClass::Write:
        ++*(dirty ? ctr_.insWriteDirty : ctr_.insWriteClean);
        break;
    }

    const PolicyTraits &traits = engine_.traits();

    if (traits.globalReplacement) {
        // BH / BH_CP / SRAM bounds: one (Fit-)LRU across all ways.
        const int way = victimWay(set, 0, ways_, ecb);
        if (way < 0) {
            // Every live frame is too small: bypass the LLC.
            ++*ctr_.bypasses;
            if (dirty)
                ++*ctr_.writebacksDirty;
            if (probe_)
                probe_->onBypass(block, dirty);
            return;
        }
        evict(set, static_cast<std::uint32_t>(way));
        writeLine(set, static_cast<std::uint32_t>(way), block, dirty, ecb);
        return;
    }

    Part part = engine_.choosePart(ctx);

    if (part == Part::Nvm) {
        const int way = config_.nvmWays == 0
            ? -1
            : victimWay(set, config_.sramWays, ways_, ecb);
        if (way >= 0) {
            evict(set, static_cast<std::uint32_t>(way));
            writeLine(set, static_cast<std::uint32_t>(way), block, dirty,
                      ecb);
            return;
        }
        // Doesn't fit in any NVM frame of the set: fall back to SRAM
        // (paper Sec. IV-B).
        ++*ctr_.insertNvmFallbackSram;
        part = Part::Sram;
    }

    if (config_.sramWays == 0) {
        ++*ctr_.bypasses;
        if (dirty)
            ++*ctr_.writebacksDirty;
        if (probe_)
            probe_->onBypass(block, dirty);
        return;
    }

    // SRAM insertion. Look for an empty way first.
    int way = -1;
    for (std::uint32_t w = 0; w < config_.sramWays; ++w) {
        if (!valid_[index(set, w)]) {
            way = static_cast<int>(w);
            break;
        }
    }

    if (way < 0) {
        if (traits.lhybridSramReplacement) {
            // LHybrid: migrate the MRU loop-block to NVM to free a frame;
            // otherwise evict the LRU (paper Sec. II-C).
            const int lb_way =
                lru_.mruWay(set, 0, config_.sramWays,
                            [&](std::uint32_t w) {
                                const std::size_t i = index(set, w);
                                return valid_[i] != 0 && !dirty_[i] &&
                                       tracker_.classOf(tags_[i]) ==
                                           ReuseClass::Read;
                            });
            if (lb_way >= 0) {
                migrateToNvm(set, static_cast<std::uint32_t>(lb_way));
                way = lb_way;
            } else {
                way = lru_.lruWay(set, 0, config_.sramWays,
                                  [](std::uint32_t) { return true; });
            }
        } else {
            way = lru_.lruWay(set, 0, config_.sramWays,
                              [](std::uint32_t) { return true; });
            HLLC_ASSERT(way >= 0);
            const std::size_t vi =
                index(set, static_cast<std::uint32_t>(way));
            if (traits.migrateReadReuseOnSramEviction && valid_[vi] &&
                tracker_.classOf(tags_[vi]) == ReuseClass::Read) {
                // CA_RWR: a read-reused SRAM victim moves to NVM instead
                // of leaving the LLC (paper Sec. IV-B).
                migrateToNvm(set, static_cast<std::uint32_t>(way));
            }
        }
    }

    HLLC_ASSERT(way >= 0);
    evict(set, static_cast<std::uint32_t>(way));
    writeLine(set, static_cast<std::uint32_t>(way), block, dirty, ecb);
}

AccessOutcome
HybridLlc::onGetS(Addr block)
{
    const std::uint32_t set = setOf(block);
    const int way = findWay(set, block);
    ++*ctr_.gets;

    if (way < 0) {
        // Miss: the block is fetched from memory straight into L2 and its
        // reuse history restarts (Sec. III-A).
        tracker_.onMemoryFetch(block);
        ++*ctr_.getsMisses;
        return AccessOutcome::Miss;
    }

    const std::size_t i = index(set, static_cast<std::uint32_t>(way));
    tracker_.onLlcHit(block, /*getx=*/false, dirty_[i] != 0);
    rrpv_[i] = 0;
    lru_.touch(set, static_cast<std::uint32_t>(way));
    if (dueling_)
        dueling_->recordHit(set);

    if (isNvmWay(static_cast<std::uint32_t>(way))) {
        ++*ctr_.getsHitsNvm;
        return AccessOutcome::HitNvm;
    }
    ++*ctr_.getsHitsSram;
    return AccessOutcome::HitSram;
}

AccessOutcome
HybridLlc::onGetX(Addr block)
{
    const std::uint32_t set = setOf(block);
    const int way = findWay(set, block);
    ++*ctr_.getx;

    if (way < 0) {
        tracker_.onMemoryFetch(block);
        ++*ctr_.getxMisses;
        return AccessOutcome::Miss;
    }

    const std::size_t i = index(set, static_cast<std::uint32_t>(way));
    tracker_.onLlcHit(block, /*getx=*/true, dirty_[i] != 0);
    if (dueling_)
        dueling_->recordHit(set);

    // Invalidate-on-hit: ownership moves to the private levels; the dirty
    // block will be Put back on L2 eviction (Sec. III-A).
    const bool nvm = isNvmWay(static_cast<std::uint32_t>(way));
    valid_[i] = 0;
    dirty_[i] = 0;
    ++*ctr_.invalidateOnGetx;

    if (nvm) {
        ++*ctr_.getxHitsNvm;
        return AccessOutcome::HitNvm;
    }
    ++*ctr_.getxHitsSram;
    return AccessOutcome::HitSram;
}

void
HybridLlc::onPut(Addr block, bool dirty, unsigned ecb_bytes)
{
    HLLC_ASSERT(ecb_bytes >= 2 && ecb_bytes <= blockBytes,
                "implausible ECB size %u", ecb_bytes);
    ++*(dirty ? ctr_.putsDirty : ctr_.putsClean);

    const std::uint32_t set = setOf(block);
    const int way = findWay(set, block);

    if (way >= 0) {
        // Already resident (the usual case for clean L2 victims whose
        // copy survived in the LLC): no write needed.
        ++*ctr_.putsPresent;
        const auto uway = static_cast<std::uint32_t>(way);
        const std::size_t i = index(set, uway);
        rrpv_[i] = 0;
        lru_.touch(set, uway);
        if (!dirty)
            return;
        // A dirty Put over a (stale) resident copy rewrites it in place
        // when the frame still fits the new contents.
        const unsigned stored = storedSize(uway, ecb_bytes);
        if (frameCapacity(set, uway) >= stored) {
            dirty_[i] = 1;
            ecb_[i] = static_cast<std::uint8_t>(ecb_bytes);
            if (isNvmWay(uway)) {
                faultMap_->recordWrite(frameOf(set, uway), stored);
                ++*ctr_.nvmWrites;
                *ctr_.nvmBytesWritten += stored;
                if (dueling_)
                    dueling_->recordNvmBytes(set, stored);
            }
            ++*ctr_.inplaceUpdates;
            if (probe_)
                probe_->onInplaceUpdate(set, uway, block, stored,
                                        isNvmWay(uway));
            return;
        }
        // Grew past the frame's capacity: relocate.
        if (probe_)
            probe_->onRelocate(set, uway, block);
        valid_[i] = 0;
        dirty_[i] = 0;
    }

    insert(block, dirty, ecb_bytes);
}

AccessOutcome
HybridLlc::handle(const LlcEvent &event)
{
    tick(config_.cyclesPerEvent);
    switch (event.type) {
      case LlcEventType::GetS:
        return onGetS(event.blockNum);
      case LlcEventType::GetX:
        return onGetX(event.blockNum);
      case LlcEventType::PutClean:
        onPut(event.blockNum, false, event.ecbBytes);
        return AccessOutcome::Miss;
      case LlcEventType::PutDirty:
        onPut(event.blockNum, true, event.ecbBytes);
        return AccessOutcome::Miss;
    }
    panic("unknown LLC event type");
}

void
HybridLlc::tick(Cycle cycles)
{
    if (dueling_)
        dueling_->tick(cycles);
}

bool
HybridLlc::contains(Addr block) const
{
    return findWay(setOf(block), block) >= 0;
}

std::optional<Part>
HybridLlc::partOf(Addr block) const
{
    const int way = findWay(setOf(block), block);
    if (way < 0)
        return std::nullopt;
    return isNvmWay(static_cast<std::uint32_t>(way)) ? Part::Nvm
                                                     : Part::Sram;
}

unsigned
HybridLlc::cpthForSet(std::uint32_t set) const
{
    return dueling_ ? dueling_->cpthForSet(set) : config_.params.fixedCpth;
}

std::uint64_t
HybridLlc::demandHits() const
{
    return ctr_.getsHitsSram->value() + ctr_.getsHitsNvm->value() +
           ctr_.getxHitsSram->value() + ctr_.getxHitsNvm->value();
}

std::uint64_t
HybridLlc::demandAccesses() const
{
    return ctr_.gets->value() + ctr_.getx->value();
}

double
HybridLlc::hitRate() const
{
    const std::uint64_t accesses = demandAccesses();
    return accesses == 0
        ? 0.0
        : static_cast<double>(demandHits()) /
          static_cast<double>(accesses);
}

void
HybridLlc::revalidateAgainstFaultMap()
{
    if (config_.nvmWays == 0)
        return;
    for (std::uint32_t set = 0; set < config_.numSets; ++set) {
        for (std::uint32_t w = config_.sramWays; w < ways_; ++w) {
            const std::size_t i = index(set, w);
            if (!valid_[i])
                continue;
            const unsigned stored = storedSize(w, ecb_[i]);
            if (frameCapacity(set, w) < stored) {
                valid_[i] = 0;
                dirty_[i] = 0;
                ++*ctr_.agedOut;
            }
        }
    }
}

void
HybridLlc::reset()
{
    std::fill(valid_.begin(), valid_.end(), 0);
    std::fill(dirty_.begin(), dirty_.end(), 0);
    tracker_.clear();
}

} // namespace hllc::hybrid
