#include "hybrid/policy_tap.hh"

namespace hllc::hybrid
{

Part
TapPolicy::choosePart(const InsertContext &ctx) const
{
    // Clean thrashing-blocks only: reuse beyond the threshold, clean copy.
    if (!ctx.dirty && ctx.reuse != ReuseClass::Write &&
        ctx.hits >= hitThreshold_) {
        return Part::Nvm;
    }
    return Part::Sram;
}

} // namespace hllc::hybrid
