/**
 * @file
 * LHybrid [9], the loop-block-aware state-of-the-art insertion policy
 * (paper Sec. II-C), implemented in the fault-aware environment with
 * frame disabling as the paper's comparison methodology requires.
 *
 * Loop-blocks (clean blocks that showed read reuse in the LLC) are the
 * ideal NVM residents: LHybrid inserts them into the NVM part and steers
 * every non-loop-block to SRAM. SRAM replacement first migrates the MRU
 * loop-block to NVM to free a frame; otherwise the plain LRU is evicted.
 */

#ifndef HLLC_HYBRID_POLICY_LHYBRID_HH
#define HLLC_HYBRID_POLICY_LHYBRID_HH

#include "hybrid/insertion_policy.hh"

namespace hllc::hybrid
{

class LHybridPolicy : public InsertionPolicy
{
  public:
    PolicyKind kind() const override { return PolicyKind::LHybrid; }
    Part choosePart(const InsertContext &ctx) const override;
    bool usesCompression() const override { return false; }
    bool lhybridSramReplacement() const override { return true; }
};

} // namespace hllc::hybrid

#endif // HLLC_HYBRID_POLICY_LHYBRID_HH
