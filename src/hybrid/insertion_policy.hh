/**
 * @file
 * Insertion-policy interface of the hybrid LLC.
 *
 * A policy answers, for each incoming block, which part (SRAM/NVM) it
 * should enter, and declares the structural features the LLC must enable
 * for it: compression + byte disabling vs. raw frames + frame disabling,
 * global vs. per-part replacement, SRAM-eviction migration, LHybrid's
 * loop-block-aware SRAM replacement, and Set Dueling.
 */

#ifndef HLLC_HYBRID_INSERTION_POLICY_HH
#define HLLC_HYBRID_INSERTION_POLICY_HH

#include <memory>
#include <string_view>

#include "fault/fault_map.hh"
#include "hybrid/types.hh"

namespace hllc::hybrid
{

/** Everything a policy may consult when steering one incoming block. */
struct InsertContext
{
    Addr blockNum;      //!< block being inserted
    bool dirty;         //!< Put-dirty vs Put-clean
    unsigned ecbBytes;  //!< compressed (ECB) size of the contents
    ReuseClass reuse;   //!< current reuse classification
    unsigned hits;      //!< LLC hits since last memory fetch (TAP)
    std::uint32_t set;  //!< target set
    unsigned cpth;      //!< compression threshold in force for this set
};

/** Tunables consumed by the policy factory. */
struct PolicyParams
{
    unsigned fixedCpth = 58;    //!< CA / CA_RWR compression threshold
    unsigned tapThreshold = 2;  //!< hits needed to become thrashing (TAP)
    double thPercent = 4.0;     //!< CP_SD_Th: Th (max hits sacrificed, %)
    double twPercent = 5.0;     //!< CP_SD_Th: Tw (min write reduction, %)
};

class InsertionPolicy
{
  public:
    virtual ~InsertionPolicy() = default;

    /** Which policy this object implements. */
    virtual PolicyKind kind() const = 0;

    /** Paper label, e.g. "CP_SD". */
    std::string_view name() const { return policyName(kind()); }

    /** Steer the incoming block of @p ctx to a part. */
    virtual Part choosePart(const InsertContext &ctx) const = 0;

    /** Whether blocks are stored compressed in the NVM part. */
    virtual bool usesCompression() const = 0;

    /** Disabling granularity the NVM part must be configured with. */
    fault::DisableGranularity
    granularity() const
    {
        return usesCompression() ? fault::DisableGranularity::Byte
                                 : fault::DisableGranularity::Frame;
    }

    /**
     * NVM-unaware policies (BH, BH_CP) pick the victim with a single
     * (Fit-)LRU over all 16 ways instead of steering to a part first.
     */
    virtual bool globalReplacement() const { return false; }

    /**
     * CA_RWR-family: an SRAM victim that has shown read reuse is migrated
     * into the NVM part instead of being dropped (paper Sec. IV-B).
     */
    virtual bool migrateReadReuseOnSramEviction() const { return false; }

    /**
     * LHybrid: on SRAM replacement, the MRU loop-block (if any) is
     * migrated to NVM to free its frame (paper Sec. II-C).
     */
    virtual bool lhybridSramReplacement() const { return false; }

    /** Whether the LLC must run the Set Dueling machinery. */
    virtual bool usesSetDueling() const { return false; }

    /** Th parameter of the CP_SD_Th rule (0 for plain CP_SD). */
    virtual double thPercent() const { return 0.0; }

    /** Tw parameter of the CP_SD_Th rule (Sec. IV-D). */
    virtual double twPercent() const { return 5.0; }

    /** Instantiate the policy implementing @p kind. */
    static std::unique_ptr<InsertionPolicy>
    create(PolicyKind kind, const PolicyParams &params = {});
};

} // namespace hllc::hybrid

#endif // HLLC_HYBRID_INSERTION_POLICY_HH
