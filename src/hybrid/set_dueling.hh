/**
 * @file
 * Set Dueling machinery for runtime CPth selection (paper Sec. IV-C/D).
 *
 * Each candidate CPth value owns a leader group of floor(numSets/32)
 * sample sets (sets whose index modulo 32 equals the candidate's rank);
 * all remaining sets — including any trailing partial stripe when
 * numSets is not a multiple of 32, so every leader group has the same
 * size — follow the winning candidate. Leader groups accumulate LLC hits and
 * NVM bytes written; at every epoch boundary (2M cycles by default) the
 * winner is recomputed:
 *
 *  - CP_SD (th == 0): the candidate with the most hits wins.
 *  - CP_SD_Th: starting from the max-hits candidate i, the smallest
 *    candidate j satisfying  H(j) > H(i)*(1 - Th/100)  and
 *    W(j) < W(i)*(1 - Tw/100)  wins (Eq. (1)); if none qualifies, i wins.
 */

#ifndef HLLC_HYBRID_SET_DUELING_HH
#define HLLC_HYBRID_SET_DUELING_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hllc::serial
{
class Encoder;
class Decoder;
} // namespace hllc::serial

namespace hllc::hybrid
{

class SetDueling
{
  public:
    /**
     * @param num_sets LLC sets (leader groups are sets mod 32 within
     *        the full stripes; a trailing partial stripe follows)
     * @param candidates CPth values to duel, ascending
     * @param epoch_cycles epoch length
     * @param th_percent hits we are willing to sacrifice (Th); 0 = CP_SD
     * @param tw_percent minimum NVM-bytes-written reduction (Tw)
     */
    SetDueling(std::uint32_t num_sets,
               std::vector<unsigned> candidates,
               Cycle epoch_cycles,
               double th_percent,
               double tw_percent);

    /**
     * Leader-group index of @p set, or -1 for follower sets. The mapping
     * is fixed at construction, so it is precomputed into a flat per-set
     * table: cpthForSet()/recordHit()/recordNvmBytes() run for every
     * demand access and must be one load plus one branch.
     */
    int leaderGroup(std::uint32_t set) const { return groupOf_[set]; }

    /** CPth this set applies right now. */
    unsigned
    cpthForSet(std::uint32_t set) const
    {
        const int group = groupOf_[set];
        return group < 0 ? winner_
                         : candidates_[static_cast<std::size_t>(group)];
    }

    /** Currently winning CPth (what follower sets use). */
    unsigned winner() const { return winner_; }

    /** Record an LLC hit in @p set (leaders only accumulate). */
    void
    recordHit(std::uint32_t set)
    {
        const int group = groupOf_[set];
        if (group >= 0)
            ++hits_[static_cast<std::size_t>(group)];
    }

    /** Record @p bytes written to the NVM part in @p set. */
    void
    recordNvmBytes(std::uint32_t set, unsigned bytes)
    {
        const int group = groupOf_[set];
        if (group >= 0)
            bytes_[static_cast<std::size_t>(group)] += bytes;
    }

    /**
     * Advance the epoch clock by @p cycles; recomputes the winner at each
     * epoch boundary. @return true if an epoch boundary was crossed.
     */
    bool
    tick(Cycle cycles)
    {
        clock_ += cycles;
        if (clock_ < epochCycles_)
            return false;
        do {
            clock_ -= epochCycles_;
            closeEpoch();
        } while (clock_ >= epochCycles_);
        return true;
    }

    /** Epochs completed so far. */
    std::uint64_t epochsCompleted() const { return epochs_; }

    const std::vector<unsigned> &candidates() const { return candidates_; }

    /** Per-candidate hits of the current (unfinished) epoch. */
    const std::vector<std::uint64_t> &epochHits() const { return hits_; }
    /** Per-candidate NVM bytes written of the current epoch. */
    const std::vector<std::uint64_t> &epochBytes() const { return bytes_; }

    /** Force an epoch boundary immediately (tests / epoch studies). */
    void closeEpoch();

    /**
     * Per-epoch winners (epochs with no hits are skipped): the basis of
     * the paper's optimal-CPth distribution study (Fig. 8).
     */
    const std::vector<unsigned> &winnerHistory() const
    {
        return winnerHistory_;
    }

    /**
     * Serialise the mutable dueling state (winner, epoch clock, current
     * epoch's per-candidate accumulators, winner history). Candidates
     * and thresholds are configuration and are not stored.
     */
    void snapshot(serial::Encoder &enc) const;

    /**
     * Restore state written by snapshot() into an instance configured
     * with the same candidate list; throws IoError on mismatch.
     */
    void restore(serial::Decoder &dec);

  private:
    std::vector<unsigned> candidates_;
    Cycle epochCycles_;
    double th_;
    double tw_;

    /** Per-set leader-group index (-1 = follower), fixed at construction. */
    std::vector<std::int8_t> groupOf_;

    unsigned winner_;
    Cycle clock_ = 0;
    std::uint64_t epochs_ = 0;
    std::vector<std::uint64_t> hits_;
    std::vector<std::uint64_t> bytes_;
    std::vector<unsigned> winnerHistory_;
};

} // namespace hllc::hybrid

#endif // HLLC_HYBRID_SET_DUELING_HH
