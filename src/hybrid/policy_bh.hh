/**
 * @file
 * The NVM-unaware baselines: BH and BH_CP (paper Table III, Sec. II-D,
 * Sec. V-B).
 *
 * BH manages one global LRU list per set over all 16 ways and writes
 * blocks uncompressed wherever the LRU way lies; its NVM frames retire at
 * frame granularity. BH_CP adds compression and byte disabling: the
 * victim is the LRU line among frames whose effective capacity fits the
 * incoming ECB (global Fit-LRU), but it remains oblivious to NVM wear.
 */

#ifndef HLLC_HYBRID_POLICY_BH_HH
#define HLLC_HYBRID_POLICY_BH_HH

#include "hybrid/insertion_policy.hh"

namespace hllc::hybrid
{

/** Baseline hybrid: NVM-unaware, uncompressed, global LRU. */
class BhPolicy : public InsertionPolicy
{
  public:
    PolicyKind kind() const override { return PolicyKind::Bh; }
    Part choosePart(const InsertContext &ctx) const override;
    bool usesCompression() const override { return false; }
    bool globalReplacement() const override { return true; }
};

/** BH + compression + byte disabling (global Fit-LRU). */
class BhCpPolicy : public InsertionPolicy
{
  public:
    PolicyKind kind() const override { return PolicyKind::BhCp; }
    Part choosePart(const InsertContext &ctx) const override;
    bool usesCompression() const override { return true; }
    bool globalReplacement() const override { return true; }
};

/** Performance bound: an all-SRAM LLC of the same associativity. */
class SramOnlyPolicy : public InsertionPolicy
{
  public:
    PolicyKind kind() const override { return PolicyKind::SramOnly; }
    Part choosePart(const InsertContext &ctx) const override;
    bool usesCompression() const override { return false; }
    bool globalReplacement() const override { return true; }
};

} // namespace hllc::hybrid

#endif // HLLC_HYBRID_POLICY_BH_HH
