/**
 * @file
 * The compression-aware insertion policies CA and CA_RWR with a fixed
 * compression threshold (paper Sec. IV-A/B), and the Set-Dueling variants
 * CP_SD / CP_SD_Th that reuse CA_RWR's decision with a runtime CPth
 * (Sec. IV-C/D).
 */

#ifndef HLLC_HYBRID_POLICY_CA_HH
#define HLLC_HYBRID_POLICY_CA_HH

#include "hybrid/insertion_policy.hh"

namespace hllc::hybrid
{

/**
 * Naive compression-aware insertion: small blocks (ECB <= CPth) go to
 * NVM, big blocks to SRAM; both parts use local (Fit-)LRU replacement.
 */
class CaPolicy : public InsertionPolicy
{
  public:
    explicit CaPolicy(unsigned fixed_cpth) : cpth_(fixed_cpth) {}

    PolicyKind kind() const override { return PolicyKind::Ca; }
    Part choosePart(const InsertContext &ctx) const override;
    bool usesCompression() const override { return true; }

    unsigned fixedCpth() const { return cpth_; }

  protected:
    unsigned cpth_;
};

/**
 * Compression + read/write-reuse aware insertion (paper Table II):
 * read-reused blocks go to NVM regardless of size, write-reused blocks to
 * SRAM regardless of size, non-reused blocks by compressed size; SRAM
 * victims with read reuse migrate to NVM on eviction.
 */
class CaRwrPolicy : public CaPolicy
{
  public:
    explicit CaRwrPolicy(unsigned fixed_cpth) : CaPolicy(fixed_cpth) {}

    PolicyKind kind() const override { return PolicyKind::CaRwr; }
    Part choosePart(const InsertContext &ctx) const override;
    bool migrateReadReuseOnSramEviction() const override { return true; }
};

} // namespace hllc::hybrid

#endif // HLLC_HYBRID_POLICY_CA_HH
