/**
 * @file
 * Shared vocabulary of the hybrid LLC: parts, events, reuse classes and
 * policy identifiers.
 */

#ifndef HLLC_HYBRID_TYPES_HH
#define HLLC_HYBRID_TYPES_HH

#include <cstdint>
#include <string_view>

#include "common/types.hh"

namespace hllc::hybrid
{

/** The two technologies a hybrid-LLC way can be built from. */
enum class Part : std::uint8_t { Sram, Nvm };

/**
 * Reuse classification of a block (paper Sec. IV-B): every block starts
 * non-reused when fetched from memory; an LLC hit reclassifies it as
 * read-reused (clean copy) or write-reused (GetX hit / dirty copy).
 * Read-reuse corresponds to LHybrid's loop-blocks.
 */
enum class ReuseClass : std::uint8_t { None, Read, Write };

/** Request types the LLC observes from the private levels (Sec. III-A). */
enum class LlcEventType : std::uint8_t
{
    GetS,       //!< read request from an L2 miss
    GetX,       //!< write-permission request; invalidates on LLC hit
    PutClean,   //!< clean block evicted from L2
    PutDirty    //!< dirty block evicted from L2
};

/** Where a GetS/GetX request was serviced. */
enum class AccessOutcome : std::uint8_t { HitSram, HitNvm, Miss };

/** The insertion policies evaluated in the paper (Table III). */
enum class PolicyKind : std::uint8_t
{
    SramOnly,   //!< performance bound: every way is SRAM
    Bh,         //!< baseline hybrid: NVM-unaware global LRU
    BhCp,       //!< BH + compression + byte disabling (global Fit-LRU)
    Ca,         //!< naive compression-aware (fixed CPth)
    CaRwr,      //!< compression + read/write-reuse aware (fixed CPth)
    CpSd,       //!< CA_RWR + Set Dueling CPth selection
    CpSdTh,     //!< CP_SD + rule-based hits/bytes-written trade-off
    LHybrid,    //!< loop-block-aware state of the art [9]
    Tap         //!< thrashing-aware state of the art [32]
};

/** Printable name of a policy (matches the paper's labels). */
std::string_view policyName(PolicyKind kind);

/** One LLC-level request, as recorded in traces and replayed. */
struct LlcEvent
{
    Addr blockNum;          //!< block number (address / 64)
    LlcEventType type;
    std::uint8_t ecbBytes;  //!< compressed (ECB) size of the content
    CoreId core;            //!< requesting core (stats only)
};

} // namespace hllc::hybrid

#endif // HLLC_HYBRID_TYPES_HH
