#include "hybrid/set_dueling.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/numfmt.hh"
#include "common/serialize.hh"

namespace hllc::hybrid
{

namespace
{

/** Sets are striped over 32 dueling slots (paper: groups of N/32 sets). */
constexpr std::uint32_t duelingSlots = 32;

} // anonymous namespace

SetDueling::SetDueling(std::uint32_t num_sets,
                       std::vector<unsigned> candidates,
                       Cycle epoch_cycles,
                       double th_percent,
                       double tw_percent)
    : candidates_(std::move(candidates)),
      epochCycles_(epoch_cycles),
      th_(th_percent),
      tw_(tw_percent)
{
    HLLC_ASSERT(!candidates_.empty());
    HLLC_ASSERT(std::is_sorted(candidates_.begin(), candidates_.end()));
    HLLC_ASSERT(candidates_.size() <= duelingSlots);
    HLLC_ASSERT(num_sets >= duelingSlots,
                "need at least %u sets for set dueling", duelingSlots);
    HLLC_ASSERT(epoch_cycles > 0);
    HLLC_ASSERT(th_ >= 0.0 && tw_ >= 0.0);

    // When num_sets is not a multiple of the 32 dueling slots, the
    // trailing partial stripe would give slots 0..(num_sets % 32 - 1)
    // one leader set more than the rest, biasing the hit/bytes race
    // toward low-index (small-CPth) candidates. Keep leader groups
    // equal-sized by making the trailing sets plain followers.
    const std::uint32_t leader_sets = num_sets - num_sets % duelingSlots;
    groupOf_.assign(num_sets, -1);
    for (std::uint32_t set = 0; set < leader_sets; ++set) {
        const std::uint32_t slot = set % duelingSlots;
        if (slot < candidates_.size())
            groupOf_[set] = static_cast<std::int8_t>(slot);
    }

    // Start following the largest CPth: closest to the unconstrained
    // (BH-like) insertion behaviour until the first epoch resolves.
    winner_ = candidates_.back();
    hits_.assign(candidates_.size(), 0);
    bytes_.assign(candidates_.size(), 0);
}

void
SetDueling::snapshot(serial::Encoder &enc) const
{
    enc.u32(static_cast<std::uint32_t>(candidates_.size()));
    enc.u32(winner_);
    enc.u64(clock_);
    enc.u64(epochs_);
    enc.u64Vec(hits_);
    enc.u64Vec(bytes_);
    std::vector<std::uint64_t> history(winnerHistory_.begin(),
                                       winnerHistory_.end());
    enc.u64Vec(history);
}

void
SetDueling::restore(serial::Decoder &dec)
{
    const std::uint32_t count = dec.u32();
    if (count != candidates_.size())
        throw IoError("set-dueling snapshot has " + formatU64(count) +
                      " candidates, instance has " +
                      formatU64(candidates_.size()));
    const std::uint32_t winner = dec.u32();
    if (std::find(candidates_.begin(), candidates_.end(), winner) ==
        candidates_.end()) {
        throw IoError("set-dueling snapshot winner " +
                      formatU64(winner) + " is not a candidate");
    }
    const std::uint64_t clock = dec.u64();
    const std::uint64_t epochs = dec.u64();
    std::vector<std::uint64_t> hits = dec.u64Vec();
    std::vector<std::uint64_t> bytes = dec.u64Vec();
    const std::vector<std::uint64_t> history = dec.u64Vec();
    if (hits.size() != candidates_.size() ||
        bytes.size() != candidates_.size()) {
        throw IoError("set-dueling snapshot accumulator size mismatch");
    }

    winner_ = winner;
    clock_ = clock;
    epochs_ = epochs;
    hits_ = std::move(hits);
    bytes_ = std::move(bytes);
    winnerHistory_.assign(history.begin(), history.end());
}

void
SetDueling::closeEpoch()
{
    ++epochs_;

    std::uint64_t total_hits = 0;
    for (auto h : hits_)
        total_hits += h;

    if (total_hits > 0) {
        // i: the candidate with the maximum number of hits.
        std::size_t i = 0;
        for (std::size_t c = 1; c < candidates_.size(); ++c) {
            if (hits_[c] > hits_[i])
                i = c;
        }

        std::size_t chosen = i;
        if (th_ > 0.0) {
            // Eq. (1): smallest CPth j trading <= Th% hits for >= Tw%
            // fewer NVM bytes written.
            const double h_floor =
                static_cast<double>(hits_[i]) * (1.0 - th_ / 100.0);
            const double w_ceil =
                static_cast<double>(bytes_[i]) * (1.0 - tw_ / 100.0);
            for (std::size_t j = 0; j < candidates_.size(); ++j) {
                if (static_cast<double>(hits_[j]) > h_floor &&
                    static_cast<double>(bytes_[j]) < w_ceil) {
                    chosen = j;
                    break;
                }
            }
        }
        winner_ = candidates_[chosen];
        winnerHistory_.push_back(winner_);
    }

    std::fill(hits_.begin(), hits_.end(), 0);
    std::fill(bytes_.begin(), bytes_.end(), 0);
}

} // namespace hllc::hybrid
