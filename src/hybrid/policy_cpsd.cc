#include "hybrid/policy_cpsd.hh"

// CP_SD's behaviour is fully described by the CaRwr decision plus the
// Set Dueling flags declared inline; this translation unit anchors the
// vtables.

namespace hllc::hybrid
{
} // namespace hllc::hybrid
