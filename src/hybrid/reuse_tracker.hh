/**
 * @file
 * Block reuse bookkeeping shared by every insertion policy.
 *
 * The paper tags blocks (in both L2 and LLC) with their reuse class; the
 * tag travels with the block and is reset when the block re-enters the
 * hierarchy from main memory. This tracker centralises that state, keyed
 * by block number, and also maintains the per-block LLC hit count that
 * TAP's thrashing classification needs.
 */

#ifndef HLLC_HYBRID_REUSE_TRACKER_HH
#define HLLC_HYBRID_REUSE_TRACKER_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"
#include "hybrid/types.hh"

namespace hllc::hybrid
{

class ReuseTracker
{
  public:
    /** Reuse class of @p block (None if never seen). */
    ReuseClass classOf(Addr block) const
    {
        auto it = map_.find(block);
        return it == map_.end() ? ReuseClass::None : it->second.reuse;
    }

    /** LLC hits accumulated by @p block since its last memory fetch. */
    unsigned hitsOf(Addr block) const
    {
        auto it = map_.find(block);
        return it == map_.end() ? 0 : it->second.hits;
    }

    /**
     * An LLC hit reclassifies the block: GetX hits and hits on dirty
     * copies mean write reuse; GetS hits on clean copies mean read reuse
     * (LHybrid's loop-block condition).
     */
    void
    onLlcHit(Addr block, bool getx, bool copy_dirty)
    {
        Info &info = map_[block];
        if (info.hits < 0xffff)
            ++info.hits;
        info.reuse = (getx || copy_dirty) ? ReuseClass::Write
                                          : ReuseClass::Read;
    }

    /**
     * The block missed the whole hierarchy and is being refetched from
     * memory: its reuse history is discarded (blocks enter L2 as
     * non-reused / NLB).
     */
    void onMemoryFetch(Addr block) { map_.erase(block); }

    /** Number of blocks currently tracked. */
    std::size_t size() const { return map_.size(); }

    /** Drop all state (fresh replay). */
    void clear() { map_.clear(); }

  private:
    struct Info
    {
        ReuseClass reuse = ReuseClass::None;
        std::uint16_t hits = 0;
    };

    std::unordered_map<Addr, Info> map_;
};

} // namespace hllc::hybrid

#endif // HLLC_HYBRID_REUSE_TRACKER_HH
