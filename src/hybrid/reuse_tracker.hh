/**
 * @file
 * Block reuse bookkeeping shared by every insertion policy.
 *
 * The paper tags blocks (in both L2 and LLC) with their reuse class; the
 * tag travels with the block and is reset when the block re-enters the
 * hierarchy from main memory. This tracker centralises that state, keyed
 * by block number, and also maintains the per-block LLC hit count that
 * TAP's thrashing classification needs.
 *
 * The store is a flat open-addressing table (linear probing,
 * backward-shift deletion) rather than std::unordered_map: classOf() and
 * hitsOf() run for every insertion and onLlcHit()/onMemoryFetch() for
 * every demand access, so the per-event lookup must be one hash, one
 * probe run over a contiguous array and no node allocation. Behaviour is
 * fully deterministic (probe order depends only on the key sequence),
 * which the rerun-differential checks rely on.
 */

#ifndef HLLC_HYBRID_REUSE_TRACKER_HH
#define HLLC_HYBRID_REUSE_TRACKER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "hybrid/types.hh"

namespace hllc::hybrid
{

class ReuseTracker
{
  public:
    ReuseTracker() : slots_(initialSlots) {}

    /** Reuse class of @p block (None if never seen). */
    ReuseClass
    classOf(Addr block) const
    {
        const Slot *s = find(block);
        return s == nullptr ? ReuseClass::None
                            : static_cast<ReuseClass>(s->reuse);
    }

    /** LLC hits accumulated by @p block since its last memory fetch. */
    unsigned
    hitsOf(Addr block) const
    {
        const Slot *s = find(block);
        return s == nullptr ? 0 : s->hits;
    }

    /**
     * An LLC hit reclassifies the block: GetX hits and hits on dirty
     * copies mean write reuse; GetS hits on clean copies mean read reuse
     * (LHybrid's loop-block condition).
     */
    void
    onLlcHit(Addr block, bool getx, bool copy_dirty)
    {
        Slot &s = findOrInsert(block);
        if (s.hits < 0xffff)
            ++s.hits;
        s.reuse = static_cast<std::uint8_t>(
            (getx || copy_dirty) ? ReuseClass::Write : ReuseClass::Read);
    }

    /**
     * The block missed the whole hierarchy and is being refetched from
     * memory: its reuse history is discarded (blocks enter L2 as
     * non-reused / NLB).
     */
    void
    onMemoryFetch(Addr block)
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hashOf(block) & mask;
        while (slots_[i].used) {
            if (slots_[i].key == block) {
                eraseAt(i);
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /** Number of blocks currently tracked. */
    std::size_t size() const { return size_; }

    /** Drop all state (fresh replay). */
    void
    clear()
    {
        slots_.assign(initialSlots, Slot{});
        size_ = 0;
    }

  private:
    struct Slot
    {
        Addr key = 0;
        std::uint16_t hits = 0;
        std::uint8_t reuse = 0; //!< ReuseClass
        std::uint8_t used = 0;
    };

    static constexpr std::size_t initialSlots = 1024;

    /** splitmix64 finalizer: a full-avalanche mix of the block number. */
    static std::size_t
    hashOf(Addr key)
    {
        std::uint64_t x = key;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return static_cast<std::size_t>(x);
    }

    const Slot *
    find(Addr key) const
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hashOf(key) & mask;
        while (slots_[i].used) {
            if (slots_[i].key == key)
                return &slots_[i];
            i = (i + 1) & mask;
        }
        return nullptr;
    }

    Slot &
    findOrInsert(Addr key)
    {
        // Keep the table at most half full so probe runs stay short.
        if ((size_ + 1) * 2 > slots_.size())
            grow();
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hashOf(key) & mask;
        while (slots_[i].used) {
            if (slots_[i].key == key)
                return slots_[i];
            i = (i + 1) & mask;
        }
        slots_[i] = Slot{ key, 0, 0, 1 };
        ++size_;
        return slots_[i];
    }

    /**
     * Backward-shift deletion (Knuth 6.4 Algorithm R): followers of the
     * probe run whose home slot lies at or before the hole slide back so
     * lookups never need tombstones.
     */
    void
    eraseAt(std::size_t hole)
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hole;
        std::size_t j = hole;
        while (true) {
            j = (j + 1) & mask;
            if (!slots_[j].used)
                break;
            const std::size_t home = hashOf(slots_[j].key) & mask;
            // Move slots_[j] into the hole unless its home position lies
            // cyclically within (i, j] (it would then probe past i).
            const bool home_in_range = i <= j ? (home > i && home <= j)
                                              : (home > i || home <= j);
            if (!home_in_range) {
                slots_[i] = slots_[j];
                i = j;
            }
        }
        slots_[i] = Slot{};
        --size_;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        const std::size_t mask = slots_.size() - 1;
        for (const Slot &s : old) {
            if (!s.used)
                continue;
            std::size_t i = hashOf(s.key) & mask;
            while (slots_[i].used)
                i = (i + 1) & mask;
            slots_[i] = s;
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

} // namespace hllc::hybrid

#endif // HLLC_HYBRID_REUSE_TRACKER_HH
