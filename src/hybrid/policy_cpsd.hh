/**
 * @file
 * CP_SD and CP_SD_Th: CA_RWR steering with the compression threshold
 * chosen at runtime by Set Dueling (paper Sec. IV-C/D). The dueling
 * machinery itself lives in the LLC (it needs set-level visibility); the
 * policy object declares that it must be enabled and carries the Th/Tw
 * rule parameters.
 */

#ifndef HLLC_HYBRID_POLICY_CPSD_HH
#define HLLC_HYBRID_POLICY_CPSD_HH

#include "hybrid/policy_ca.hh"

namespace hllc::hybrid
{

/** CP_SD: performance-optimized Set Dueling (max-hits winner). */
class CpSdPolicy : public CaRwrPolicy
{
  public:
    CpSdPolicy() : CaRwrPolicy(0) {}

    PolicyKind kind() const override { return PolicyKind::CpSd; }
    bool usesSetDueling() const override { return true; }
};

/**
 * CP_SD_Th: the rule-based variant that sacrifices up to Th% hits when a
 * candidate reduces NVM bytes written by at least Tw% (Eq. (1)).
 */
class CpSdThPolicy : public CpSdPolicy
{
  public:
    CpSdThPolicy(double th_percent, double tw_percent)
        : th_(th_percent), tw_(tw_percent)
    {}

    PolicyKind kind() const override { return PolicyKind::CpSdTh; }
    double thPercent() const override { return th_; }
    double twPercent() const override { return tw_; }

  private:
    double th_;
    double tw_;
};

} // namespace hllc::hybrid

#endif // HLLC_HYBRID_POLICY_CPSD_HH
