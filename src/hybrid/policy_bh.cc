#include "hybrid/policy_bh.hh"

namespace hllc::hybrid
{

// Global-replacement policies never steer by part: the LLC's victim
// search decides where the block lands. choosePart() is only consulted as
// a tie-break default and answers "wherever" (Sram keeps the all-SRAM
// bound and empty-NVM corner cases trivially correct).

Part
BhPolicy::choosePart(const InsertContext &) const
{
    return Part::Sram;
}

Part
BhCpPolicy::choosePart(const InsertContext &) const
{
    return Part::Sram;
}

Part
SramOnlyPolicy::choosePart(const InsertContext &) const
{
    return Part::Sram;
}

} // namespace hllc::hybrid
