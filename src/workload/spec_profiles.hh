/**
 * @file
 * The twenty SPEC CPU 2006/2017 application stand-ins used by the paper's
 * mixes (Table V).
 *
 * Profiles are synthetic estimates: compressibility fractions follow the
 * qualitative shape of Figure 2 (GemsFDTD/zeusmp almost fully HCR,
 * xz17/milc incompressible, ~49% HCR / ~29% LCR / ~22% incompressible on
 * average) and access patterns reflect each benchmark's well-known LLC
 * behaviour class (see DESIGN.md Sec. 2 for the substitution rationale).
 */

#ifndef HLLC_WORKLOAD_SPEC_PROFILES_HH
#define HLLC_WORKLOAD_SPEC_PROFILES_HH

#include <string_view>
#include <vector>

#include "workload/app_model.hh"

namespace hllc::workload
{

/** All twenty application profiles. */
const std::vector<AppProfile> &specProfiles();

/** Profile by benchmark name; fatal() on unknown names. */
const AppProfile &profileByName(std::string_view name);

} // namespace hllc::workload

#endif // HLLC_WORKLOAD_SPEC_PROFILES_HH
