#include "workload/block_synth.hh"

#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"

namespace hllc::workload
{

using compression::BdiCompressor;
using compression::Ce;
using compression::ceInfo;
using compression::numCe;

namespace
{

/**
 * Interior weights used to spread an aggregate HCR / LCR mass over the
 * member encodings. HCR members skew towards the well-compressing
 * encodings (zero blocks and narrow deltas dominate real workloads);
 * LCR members are spread fairly evenly.
 */
struct InteriorWeight
{
    Ce ce;
    double weight;
};

constexpr InteriorWeight hcrMembers[] = {
    { Ce::Zeros, 0.14 }, { Ce::Rep8, 0.10 }, { Ce::B8D1, 0.18 },
    { Ce::B4D1, 0.10 }, { Ce::B8D2, 0.16 }, { Ce::B8D3, 0.12 },
    { Ce::B2D1, 0.06 }, { Ce::B4D2, 0.06 }, { Ce::B8D4, 0.08 },
};

constexpr InteriorWeight lcrMembers[] = {
    { Ce::B8D5, 0.35 }, { Ce::B4D3, 0.15 }, { Ce::B8D6, 0.25 },
    { Ce::B8D7, 0.25 },
};

} // anonymous namespace

ContentMix::ContentMix()
{
    cumulative_.fill(0.0);
    cumulative_[static_cast<std::size_t>(Ce::Uncompressed)] = 1.0;
    // Make the CDF non-decreasing up to 1.
    double acc = 0.0;
    for (auto &c : cumulative_) {
        acc += c;
        c = acc;
    }
}

ContentMix
ContentMix::fromClassFractions(double hcr, double lcr)
{
    HLLC_ASSERT(hcr >= 0.0 && lcr >= 0.0 && hcr + lcr <= 1.0 + 1e-9,
                "invalid class fractions %.3f/%.3f", hcr, lcr);

    std::array<double, numCe> weights{};
    for (const auto &m : hcrMembers)
        weights[static_cast<std::size_t>(m.ce)] = hcr * m.weight;
    for (const auto &m : lcrMembers)
        weights[static_cast<std::size_t>(m.ce)] = lcr * m.weight;
    weights[static_cast<std::size_t>(Ce::Uncompressed)] =
        std::max(0.0, 1.0 - hcr - lcr);

    ContentMix mix;
    double acc = 0.0;
    for (std::size_t i = 0; i < numCe; ++i) {
        acc += weights[i];
        mix.cumulative_[i] = acc;
    }
    // Normalise against rounding drift.
    for (auto &c : mix.cumulative_)
        c /= acc;
    return mix;
}

double
ContentMix::weight(Ce ce) const
{
    const auto i = static_cast<std::size_t>(ce);
    const double prev = i == 0 ? 0.0 : cumulative_[i - 1];
    return cumulative_[i] - prev;
}

Ce
ContentMix::draw(double u) const
{
    for (std::size_t i = 0; i < numCe; ++i) {
        if (u < cumulative_[i])
            return static_cast<Ce>(i);
    }
    return Ce::Uncompressed;
}

namespace
{

/** Write the low @p k bytes of @p v at value slot @p idx. */
void
putValue(BlockData &data, unsigned k, unsigned idx, std::uint64_t v)
{
    std::memcpy(data.data() + static_cast<std::size_t>(idx) * k, &v, k);
}

/**
 * A delta that needs exactly @p d bytes (two's complement): magnitude in
 * [2^(8(d-1)-1), 2^(8d-1)). For d == 1, any non-zero int8 works.
 */
std::int64_t
deltaNeeding(unsigned d, Xoshiro256StarStar &rng)
{
    const std::int64_t hi = std::int64_t{1} << (8 * d - 1);
    const std::int64_t lo = d == 1 ? 1 : (std::int64_t{1} << (8 * d - 9));
    std::int64_t magnitude =
        lo + static_cast<std::int64_t>(
                 rng.nextBounded(static_cast<std::uint64_t>(hi - lo)));
    return rng.nextBool(0.5) ? magnitude : -magnitude;
}

/** A delta fitting in @p d bytes (possibly needing fewer). */
std::int64_t
deltaWithin(unsigned d, Xoshiro256StarStar &rng)
{
    const std::int64_t hi = std::int64_t{1} << (8 * d - 1);
    std::int64_t magnitude = static_cast<std::int64_t>(
        rng.nextBounded(static_cast<std::uint64_t>(hi)));
    return rng.nextBool(0.5) ? magnitude : -magnitude;
}

BlockData
synthesizeOnce(Ce target, Xoshiro256StarStar &rng)
{
    BlockData data{};

    switch (target) {
      case Ce::Zeros:
        return data;
      case Ce::Rep8: {
        std::uint64_t v = rng.next();
        if (v == 0)
            v = 1;
        for (unsigned i = 0; i < blockBytes / 8; ++i)
            putValue(data, 8, i, v);
        return data;
      }
      case Ce::Uncompressed:
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.next());
        return data;
      default: {
        const auto &info = ceInfo(target);
        const unsigned k = info.baseBytes;
        const unsigned d = info.deltaBytes;
        const unsigned values = blockBytes / k;
        const std::uint64_t k_mask =
            k >= 8 ? ~std::uint64_t{0}
                   : ((std::uint64_t{1} << (8 * k)) - 1);

        // Keep the base away from the representable edges so deltas do
        // not wrap the sign-extension check.
        std::uint64_t base = rng.next() & k_mask;
        if (k < 8) {
            const std::uint64_t quarter = std::uint64_t{1} << (8 * k - 2);
            base = quarter + (base % (2 * quarter));
        }

        putValue(data, k, 0, base);
        // One delta pinned to need exactly d bytes; the rest anywhere
        // within d bytes.
        const unsigned pinned =
            1 + static_cast<unsigned>(rng.nextBounded(values - 1));
        for (unsigned i = 1; i < values; ++i) {
            const std::int64_t delta = (i == pinned)
                ? deltaNeeding(d, rng)
                : deltaWithin(d, rng);
            const std::uint64_t v =
                (base + static_cast<std::uint64_t>(delta)) & k_mask;
            putValue(data, k, i, v);
        }
        return data;
      }
    }
}

} // anonymous namespace

BlockData
synthesizeBlock(Ce target, std::uint64_t seed)
{
    Xoshiro256StarStar rng(mix64(seed));
    const unsigned want = compression::ecbSize(target);

    for (int attempt = 0; attempt < 8; ++attempt) {
        BlockData data = synthesizeOnce(target, rng);
        if (BdiCompressor::compress(data).ecbBytes == want)
            return data;
    }
    // Statistically unreachable for the constructions above; fall back to
    // the last attempt rather than looping forever.
    warn("synthesizeBlock: could not hit target CE %s for seed %llu",
         std::string(ceInfo(target).name).c_str(),
         static_cast<unsigned long long>(seed));
    return synthesizeOnce(target, rng);
}

} // namespace hllc::workload
