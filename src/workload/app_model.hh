/**
 * @file
 * Synthetic application models substituting for SPEC CPU 2006/2017 traces.
 *
 * The paper drives its evaluation with memory-intensive SPEC applications;
 * those binaries/traces are not redistributable, so each application is
 * replaced by a parameterised synthetic model that reproduces the
 * behaviour the paper's mechanisms are sensitive to:
 *
 *  - LLC-level reuse classes: looping working sets (LHybrid loop-blocks /
 *    read reuse), streaming/thrashing sweeps (no reuse), random pointer
 *    chasing, and write-intensive regions (write reuse);
 *  - the block-content compressibility profile of Figure 2, realised as
 *    real 64-byte contents the BDI compressor sees.
 *
 * Working-set sizes are expressed relative to the LLC capacity so that
 * scaled-down experiments (HLLC_SCALE) keep the same pressure ratios.
 */

#ifndef HLLC_WORKLOAD_APP_MODEL_HH
#define HLLC_WORKLOAD_APP_MODEL_HH

#include <string>
#include <string_view>
#include <unordered_map>

#include <memory>

#include "common/rng.hh"
#include "common/types.hh"
#include "compression/compressor.hh"
#include "workload/block_synth.hh"

namespace hllc::workload
{

/** One core-level memory reference. */
struct MemRef
{
    Addr blockNum;  //!< block-granular address
    bool write;
};

/** Static description of one synthetic application. */
struct AppProfile
{
    std::string name;          //!< e.g. "zeusmp06"

    /** @name Access-pattern mix (probabilities, sum <= 1) */
    ///@{
    double pLoop = 0.0;        //!< sweep over the loop working set
    double pStream = 0.0;      //!< one-way sweep over the full footprint
    double pRandom = 0.0;      //!< uniform over the full footprint
    ///@}

    /** Loop working-set size as a fraction of LLC capacity. */
    double loopFactor = 0.25;
    /**
     * Fraction of loop accesses landing on a random loop block instead
     * of the sweep cursor (real loops are not perfectly cyclic; without
     * jitter, LRU over an oversized loop set degenerates to a 0% hit
     * rate and loop-block detection can never bootstrap).
     */
    double loopJitter = 0.4;
    /** Total footprint as a multiple of LLC capacity. */
    double footprintFactor = 4.0;

    /**
     * Probability that a burst targets the write-cycle set: the hot,
     * repeatedly rewritten state whose GetX-invalidate / Put-dirty
     * round trips form the LLC's write-reuse traffic (paper Sec. IV-B).
     */
    double writeFraction = 0.1;
    /**
     * Write-cycle set size as a fraction of LLC capacity: past the
     * private L2 (so rewrites round-trip through the LLC) but well
     * inside the SRAM part's reach.
     */
    double writeSetFactor = 0.06;
    /** Scales the residual dirtiness of non-write-cycle bursts. */
    double loopWriteBias = 0.5;
    /**
     * Mean consecutive references to the same block (word-level spatial
     * locality inside the 64 B line + register-pressure re-touches);
     * this is what the private L1 filters.
     */
    double spatialBurst = 8.0;

    /** Block-content compressibility (Figure 2). */
    double hcrFraction = 0.49;
    double lcrFraction = 0.29;
    // incompressible = 1 - hcr - lcr

    /** Memory references per instruction (timing model). */
    double memIntensity = 0.3;
    /** CPI of non-memory work on the 8-wide OoO core. */
    double baseCpi = 0.4;
};

/**
 * A running instance of an application: generates the reference stream
 * and owns the (deterministic) contents of its blocks.
 */
class AppModel
{
  public:
    /**
     * @param profile static description
     * @param addr_base start of this instance's address space (block
     *        units); instances must not overlap
     * @param llc_blocks LLC capacity in blocks (resolves the relative
     *        working-set factors)
     * @param rng private random stream
     */
    /**
     * @param compressor scheme used to size block contents (shared
     *        across the mix); BDI when null (the paper's choice)
     */
    AppModel(const AppProfile &profile, Addr addr_base,
             std::uint64_t llc_blocks, Xoshiro256StarStar rng,
             std::shared_ptr<const compression::BlockCompressor>
                 compressor = nullptr);

    /** Produce the next memory reference. */
    MemRef next();

    /** Compressibility category (target CE) of @p block. */
    compression::Ce targetCeOf(Addr block) const;

    /**
     * ECB size of @p block's contents, via real compression of the
     * synthesised data. Cached: content class is a per-block property, so
     * the size is stable across rewrites of the same block.
     */
    unsigned ecbSizeOf(Addr block);

    /** The compression scheme sizing this app's blocks. */
    const compression::BlockCompressor &compressor() const
    {
        return *compressor_;
    }

    /** Materialise @p block's contents (version = write count). */
    BlockData contentOf(Addr block, std::uint32_t version) const;

    const AppProfile &profile() const { return profile_; }
    Addr addrBase() const { return addrBase_; }
    std::uint64_t footprintBlocks() const { return footprintBlocks_; }
    std::uint64_t loopBlocks() const { return loopBlocks_; }
    std::uint64_t writeBlocks() const { return writeBlocks_; }

  private:
    /** First block of the streaming region (after loop + write sets). */
    Addr
    streamStart() const
    {
        return (loopBlocks_ + writeBlocks_) % footprintBlocks_;
    }

    AppProfile profile_;
    ContentMix mix_;
    std::shared_ptr<const compression::BlockCompressor> compressor_;
    Addr addrBase_;
    std::uint64_t footprintBlocks_;
    std::uint64_t loopBlocks_;
    std::uint64_t writeBlocks_;
    Xoshiro256StarStar rng_;
    std::uint64_t contentSalt_;

    Addr loopCursor_ = 0;
    Addr streamCursor_ = 0;
    Addr burstBlock_ = 0;
    unsigned burstLeft_ = 0;
    bool burstWrites_ = false;

    /** blockNum -> cached ECB size. */
    std::unordered_map<Addr, std::uint8_t> ecbCache_;
};

} // namespace hllc::workload

#endif // HLLC_WORKLOAD_APP_MODEL_HH
