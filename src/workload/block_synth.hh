/**
 * @file
 * Deterministic synthesis of 64-byte block contents with a chosen
 * compressibility target.
 *
 * Given a target compression encoding and a seed, synthesizeBlock()
 * produces contents whose best BDI encoding is (with overwhelming
 * probability) exactly the target: deltas are drawn so that they need the
 * target's delta width but no more, and bases are random enough that the
 * other value widths do not apply. A verification loop re-compresses and
 * re-rolls on the rare collision, so callers can rely on the achieved
 * ECB size matching ecbSize(target).
 */

#ifndef HLLC_WORKLOAD_BLOCK_SYNTH_HH
#define HLLC_WORKLOAD_BLOCK_SYNTH_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/types.hh"
#include "compression/bdi.hh"
#include "compression/encoding.hh"

namespace hllc::workload
{

/**
 * Probability weights over compression encodings used to draw a block's
 * content class.
 */
class ContentMix
{
  public:
    /** Uniform zeros (all blocks incompressible). */
    ContentMix();

    /**
     * Build a mix from aggregate class fractions (Figure 2 reports
     * HCR/LCR/incompressible per application). The HCR and LCR masses
     * are spread over their member encodings with fixed interior
     * weights.
     */
    static ContentMix fromClassFractions(double hcr, double lcr);

    /** Weight of encoding @p ce. */
    double weight(compression::Ce ce) const;

    /** Draw a target encoding from the mix using @p u in [0,1). */
    compression::Ce draw(double u) const;

  private:
    std::array<double, compression::numCe> cumulative_;
};

/**
 * Produce contents whose best BDI encoding is @p target.
 * Deterministic in (target, seed).
 */
BlockData synthesizeBlock(compression::Ce target, std::uint64_t seed);

} // namespace hllc::workload

#endif // HLLC_WORKLOAD_BLOCK_SYNTH_HH
