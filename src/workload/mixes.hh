/**
 * @file
 * The ten multi-programmed workload mixes of paper Table V: four
 * applications per mix, one per core.
 */

#ifndef HLLC_WORKLOAD_MIXES_HH
#define HLLC_WORKLOAD_MIXES_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "workload/app_model.hh"

namespace hllc::workload
{

/** Number of cores / applications per mix. */
inline constexpr std::size_t appsPerMix = 4;

/** One row of Table V. */
struct MixSpec
{
    std::string name;                               //!< "mix 1" ... "mix 10"
    std::array<std::string, appsPerMix> apps;       //!< benchmark names
};

/** All ten mixes (Table V). */
const std::vector<MixSpec> &tableVMixes();

/**
 * Instantiate the four AppModels of @p mix with disjoint address spaces
 * and independent random streams derived from @p seed.
 *
 * @param llc_blocks LLC capacity in blocks (resolves working-set factors)
 * @param scheme compression scheme sizing the block contents
 */
std::vector<std::unique_ptr<AppModel>>
instantiateMix(const MixSpec &mix, std::uint64_t llc_blocks,
               std::uint64_t seed,
               compression::Scheme scheme = compression::Scheme::Bdi);

} // namespace hllc::workload

#endif // HLLC_WORKLOAD_MIXES_HH
