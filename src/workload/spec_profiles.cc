#include "workload/spec_profiles.hh"

#include "common/logging.hh"

namespace hllc::workload
{

namespace
{

/**
 * Compact profile constructor. Arguments: name, pattern mix
 * (loop/stream/random), loop set size (fraction of LLC), footprint
 * (multiple of LLC), write fraction, loop-write bias, HCR/LCR fractions,
 * memory intensity, base CPI.
 */
AppProfile
make(std::string name, double p_loop, double p_stream, double p_random,
     double loop_f, double foot_f, double wf, double bias, double hcr,
     double lcr, double mi, double cpi)
{
    AppProfile p;
    p.name = std::move(name);
    p.pLoop = p_loop;
    p.pStream = p_stream;
    p.pRandom = p_random;
    p.loopFactor = loop_f;
    p.footprintFactor = foot_f;
    p.writeFraction = wf;
    p.loopWriteBias = bias;
    p.hcrFraction = hcr;
    p.lcrFraction = lcr;
    p.memIntensity = mi;
    p.baseCpi = cpi;
    return p;
}

std::vector<AppProfile>
buildProfiles()
{
    std::vector<AppProfile> v;
    // Scientific loop kernels, highly compressible state (Fig. 2 left).
    v.push_back(make("zeusmp06", .78, .15, .07, .20, 1.5, 0.23, .30,
                     .88, .08, .35, .40));
    v.push_back(make("GemsFDTD06", .65, .30, .05, .30, 2.5, 0.18, .25,
                     .92, .06, .40, .45));
    v.push_back(make("libquantum06", .45, .55, .00, .30, 4.0, 0.34, .25,
                     .95, .04, .45, .40));
    // Integer codes with moderate compressibility.
    v.push_back(make("gobmk06", .55, .05, .40, .10, 0.8, 0.29, .35,
                     .45, .30, .20, .50));
    v.push_back(make("dealII06", .70, .12, .18, .15, 1.2, 0.23, .35,
                     .55, .25, .30, .45));
    v.push_back(make("bzip206", .55, .28, .17, .12, 1.8, 0.34, .30,
                     .30, .20, .25, .45));
    v.push_back(make("hmmer06", .80, .00, .20, .06, 0.4, 0.47, .70,
                     .60, .20, .30, .40));
    v.push_back(make("wrf06", .65, .25, .10, .18, 2.0, 0.23, .35,
                     .50, .30, .30, .45));
    v.push_back(make("roms17", .42, .50, .08, .15, 2.5, 0.29, .30,
                     .50, .30, .35, .45));
    v.push_back(make("cactuBSSN17", .68, .24, .08, .25, 2.0, 0.23, .35,
                     .60, .25, .35, .45));
    v.push_back(make("soplex06", .48, .12, .40, .20, 2.0, 0.18, .25,
                     .50, .20, .40, .50));
    v.push_back(make("omnetpp06", .40, .05, .55, .15, 2.5, 0.34, .30,
                     .50, .20, .35, .55));
    v.push_back(make("astar06", .48, .04, .48, .12, 1.5, 0.29, .30,
                     .50, .25, .30, .50));
    // Incompressible floating-point / compressed-data workloads.
    v.push_back(make("milc06", .30, .60, .10, .15, 3.5, 0.29, .25,
                     .00, .00, .40, .45));
    v.push_back(make("xz17", .40, .15, .45, .15, 2.0, 0.34, .30,
                     .00, .00, .30, .50));
    // Pointer-heavy and streaming SPEC 2017 codes.
    v.push_back(make("xalancbmk06", .55, .08, .37, .12, 1.8, 0.23, .30,
                     .55, .20, .30, .50));
    v.push_back(make("leslie3d06", .60, .32, .08, .20, 2.0, 0.29, .35,
                     .60, .30, .35, .45));
    v.push_back(make("bwaves17", .45, .47, .08, .25, 3.5, 0.23, .30,
                     .55, .35, .45, .45));
    v.push_back(make("mcf17", .40, .05, .55, .20, 4.0, 0.29, .30,
                     .60, .15, .45, .60));
    v.push_back(make("lbm17", .25, .65, .10, .10, 3.5, 0.52, .20,
                     .20, .40, .40, .45));
    return v;
}

} // anonymous namespace

const std::vector<AppProfile> &
specProfiles()
{
    static const std::vector<AppProfile> profiles = buildProfiles();
    return profiles;
}

const AppProfile &
profileByName(std::string_view name)
{
    for (const auto &p : specProfiles()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown application profile '%.*s'",
          static_cast<int>(name.size()), name.data());
}

} // namespace hllc::workload
