#include "workload/app_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/metrics.hh"

namespace hllc::workload
{

AppModel::AppModel(const AppProfile &profile, Addr addr_base,
                   std::uint64_t llc_blocks, Xoshiro256StarStar rng,
                   std::shared_ptr<const compression::BlockCompressor>
                       compressor)
    : profile_(profile),
      mix_(ContentMix::fromClassFractions(profile.hcrFraction,
                                          profile.lcrFraction)),
      compressor_(compressor
                      ? std::move(compressor)
                      : std::shared_ptr<const compression::
                                            BlockCompressor>(
                            compression::BlockCompressor::create(
                                compression::Scheme::Bdi))),
      addrBase_(addr_base), rng_(rng)
{
    HLLC_ASSERT(llc_blocks > 0);
    HLLC_ASSERT(profile.pLoop + profile.pStream + profile.pRandom
                    <= 1.0 + 1e-9,
                "pattern probabilities of %s exceed 1",
                profile.name.c_str());

    footprintBlocks_ = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(profile.footprintFactor *
                                       static_cast<double>(llc_blocks)));
    loopBlocks_ = std::max<std::uint64_t>(
        16, static_cast<std::uint64_t>(profile.loopFactor *
                                       static_cast<double>(llc_blocks)));
    loopBlocks_ = std::min(loopBlocks_, footprintBlocks_ / 2);
    writeBlocks_ = std::max<std::uint64_t>(
        16, static_cast<std::uint64_t>(profile.writeSetFactor *
                                       static_cast<double>(llc_blocks)));
    writeBlocks_ = std::min(writeBlocks_, footprintBlocks_ / 4);

    contentSalt_ = mix64(rng_.next());
    streamCursor_ = streamStart();
}

MemRef
AppModel::next()
{
    if (burstLeft_ == 0) {
        // Pick the next block, then dwell on it for a spatial burst
        // (what the L1 filters). With probability writeFraction the
        // burst targets the write-cycle set: frequently-updated state
        // (accumulators, histogram bins, queue heads) that is rewritten
        // over and over. These blocks are the LLC's write-reuse class:
        // each round trip is a GetX-invalidate / Put-dirty cycle.
        const double u = rng_.nextDouble();
        Addr offset;

        if (rng_.nextBool(profile_.writeFraction)) {
            offset = loopBlocks_ + rng_.nextBounded(writeBlocks_);
            burstWrites_ = true;
        } else {
            if (u < profile_.pLoop) {
                // Sweep over the loop working set with jitter: every
                // block is revisited each iteration (read reuse at the
                // LLC when the set exceeds L2).
                if (rng_.nextBool(profile_.loopJitter)) {
                    offset = rng_.nextBounded(loopBlocks_);
                } else {
                    offset = loopCursor_;
                    loopCursor_ = (loopCursor_ + 1) % loopBlocks_;
                }
            } else if (u < profile_.pLoop + profile_.pStream) {
                // One-way streaming over the tail of the footprint: no
                // temporal reuse (thrashing traffic).
                offset = streamCursor_;
                ++streamCursor_;
                if (streamCursor_ >= footprintBlocks_)
                    streamCursor_ = streamStart();
            } else {
                // Uniform random over the whole footprint.
                offset = rng_.nextBounded(footprintBlocks_);
            }
            // Residual dirtiness outside the write-cycle set (streamed
            // output arrays, occasional in-place updates).
            burstWrites_ =
                rng_.nextBool(0.06 + 0.15 * profile_.loopWriteBias);
        }

        burstBlock_ = addrBase_ + offset;
        const auto mean = profile_.spatialBurst;
        burstLeft_ = 1 + static_cast<unsigned>(
            rng_.nextBounded(static_cast<std::uint64_t>(2.0 * mean)));
    }
    --burstLeft_;

    // Half the references of a writing burst are stores.
    const bool write = burstWrites_ && rng_.nextBool(0.5);
    return { burstBlock_, write };
}

compression::Ce
AppModel::targetCeOf(Addr block) const
{
    // The content class is a stable per-block property (a given array
    // keeps its data type for the program's lifetime).
    const double u =
        static_cast<double>(mix64(block ^ contentSalt_) >> 11) * 0x1.0p-53;
    return mix_.draw(u);
}

unsigned
AppModel::ecbSizeOf(Addr block)
{
    auto it = ecbCache_.find(block);
    if (it != ecbCache_.end())
        return it->second;

    const BlockData data = contentOf(block, 0);
    unsigned ecb;
    {
        metrics::ScopedPhaseTimer timer(metrics::Phase::Compression);
        ecb = compressor_->ecbSize(data);
    }
    ecbCache_.emplace(block, static_cast<std::uint8_t>(ecb));
    return ecb;
}

BlockData
AppModel::contentOf(Addr block, std::uint32_t version) const
{
    // Rewrites change the values but not the content class, so the ECB
    // size is version-independent.
    return synthesizeBlock(targetCeOf(block),
                           mix64(block ^ contentSalt_) + version);
}

} // namespace hllc::workload
