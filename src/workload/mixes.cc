#include "workload/mixes.hh"

#include "workload/spec_profiles.hh"

#include "common/logging.hh"

namespace hllc::workload
{

const std::vector<MixSpec> &
tableVMixes()
{
    // Paper Table V (typos in the scanned table resolved to the actual
    // SPEC benchmark names).
    static const std::vector<MixSpec> mixes = {
        { "mix 1", { "zeusmp06", "gobmk06", "dealII06", "bzip206" } },
        { "mix 2", { "hmmer06", "bzip206", "wrf06", "roms17" } },
        { "mix 3", { "zeusmp06", "cactuBSSN17", "hmmer06", "soplex06" } },
        { "mix 4", { "omnetpp06", "astar06", "milc06", "libquantum06" } },
        { "mix 5", { "xalancbmk06", "leslie3d06", "bwaves17", "mcf17" } },
        { "mix 6", { "lbm17", "xz17", "GemsFDTD06", "wrf06" } },
        { "mix 7", { "cactuBSSN17", "dealII06", "libquantum06",
                     "xalancbmk06" } },
        { "mix 8", { "gobmk06", "milc06", "mcf17", "lbm17" } },
        { "mix 9", { "xz17", "astar06", "bwaves17", "soplex06" } },
        { "mix 10", { "GemsFDTD06", "omnetpp06", "roms17",
                      "leslie3d06" } },
    };
    return mixes;
}

std::vector<std::unique_ptr<AppModel>>
instantiateMix(const MixSpec &mix, std::uint64_t llc_blocks,
               std::uint64_t seed, compression::Scheme scheme)
{
    Xoshiro256StarStar root(seed);
    std::vector<std::unique_ptr<AppModel>> apps;
    apps.reserve(appsPerMix);

    const std::shared_ptr<const compression::BlockCompressor>
        compressor = compression::BlockCompressor::create(scheme);
    for (std::size_t i = 0; i < appsPerMix; ++i) {
        const AppProfile &profile = profileByName(mix.apps[i]);
        // Each instance owns a 2^40-block region: footprints can never
        // collide across cores or mixes.
        const Addr base = (static_cast<Addr>(i) + 1) << 40;
        apps.push_back(std::make_unique<AppModel>(
            profile, base, llc_blocks, root.fork(i), compressor));
    }
    return apps;
}

} // namespace hllc::workload
