/**
 * @file
 * The semantic analysis driver behind `hllc_lint`.
 *
 * analyzeTree() supersedes lint::lintTree() as the tool's engine: it
 * walks the same file set (lint::collectLintFiles), runs the token-
 * level rules (lint::lintSource) AND the per-file indexer
 * (analysis::buildFileIndex) over each file, merges the indexes into a
 * TreeIndex and runs the five semantic engines over it, honours the
 * same inline waivers and baseline, and reports through the same
 * Finding structure — so the CLI, JSON schema and baseline format stay
 * byte-compatible with the pre-semantic tool.
 *
 * Incrementality: with a cache path set, the driver persists one
 * (content hash, FileIndex, token-level findings) record per file in a
 * serial::Container (magic "HLNT"), written atomically. On a warm run
 * an unchanged file costs one read + one FNV-1a hash — no lexing — and
 * only the cross-file engines run from scratch, which keeps a warm
 * full-tree run well under the CI wall-time gate. The cache
 * self-invalidates on engine-version or rule-set changes; a corrupt or
 * truncated cache file is discarded, never trusted.
 */

#ifndef HLLC_ANALYSIS_ANALYSIS_HH
#define HLLC_ANALYSIS_ANALYSIS_HH

#include <string>
#include <vector>

#include "lint/lint.hh"

namespace hllc::analysis
{

/** analyzeTree() configuration — lint::RunOptions plus the cache. */
struct RunOptions
{
    /** Rule enablement forwarded to every engine. */
    lint::Options rules;
    /** Paths to analyze (empty = the lint default set). */
    std::vector<std::string> paths;
    /** Baseline file path ("" = no baseline). */
    std::string baselinePath;
    /** Incremental cache path ("" = no cache, index everything). */
    std::string cachePath;
};

/** How much work a run did, for the `lint` benchmark section. */
struct RunStats
{
    std::size_t filesIndexed = 0; //!< files walked this run
    std::size_t cacheHits = 0;    //!< files served from the cache
};

/**
 * Lint + semantically analyze the tree below @p root. Returns the
 * combined token-level and semantic findings after waivers and
 * baseline subtraction, sorted by file then line; fills @p stats when
 * non-null. Throws hllc::IoError when the root, a requested path or
 * the baseline cannot be read (a missing or corrupt cache is not an
 * error — it is rebuilt).
 */
lint::RunResult analyzeTree(const std::string &root,
                            const RunOptions &options,
                            RunStats *stats = nullptr);

/** Minimal SARIF 2.1.0 report, for CI code-scanning upload. */
std::string formatSarif(const lint::RunResult &result);

} // namespace hllc::analysis

#endif // HLLC_ANALYSIS_ANALYSIS_HH
