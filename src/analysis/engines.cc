#include "analysis/engines.hh"

#include <algorithm>
#include <cctype>
#include <deque>

#include "lint/lint.hh"

namespace hllc::analysis
{

namespace
{

using lint::Finding;

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

/** Path without its extension, for the `.cc includes its .hh` pair. */
std::string
stemOf(const std::string &path)
{
    const std::size_t dot = path.rfind('.');
    return dot == std::string::npos ? path : path.substr(0, dot);
}

void
report(std::vector<Finding> &findings, const std::string &file,
       int line, const char *rule, std::string message)
{
    findings.push_back({ file, line, rule, std::move(message), "" });
}

/** (file index, function index) key into the call graph. */
using FnKey = std::pair<std::size_t, std::size_t>;

/**
 * The function whose body covers @p line in @p file, or SIZE_MAX.
 * Bodies never nest (lambdas are part of their enclosing function), so
 * the first range hit wins.
 */
std::size_t
functionAt(const FileIndex &file, int line)
{
    for (std::size_t i = 0; i < file.functions.size(); ++i) {
        const FunctionDef &fn = file.functions[i];
        if (line >= fn.line && line <= fn.bodyEnd && fn.bodyEnd != 0)
            return i;
    }
    return SIZE_MAX;
}

// ---------------------------------------------------------------- //
//  failpoint-coverage                                              //
// ---------------------------------------------------------------- //

void
checkFailpointCoverage(const TreeIndex &tree,
                       std::vector<Finding> &findings)
{
    static const char *const rule = "failpoint-coverage";

    // The closed catalog: allFailpoints() in common/failpoint.cc. An
    // empty catalog (failpoint.cc outside the walked paths) disables
    // the name checks but not the reachability check.
    const FileIndex *catalog_file =
        tree.byPath("src/common/failpoint.cc");
    std::set<std::string> catalog;
    if (catalog_file != nullptr) {
        for (const CatalogEntry &entry : catalog_file->catalog)
            catalog.insert(entry.name);
    }

    std::set<std::string> site_names;
    for (const FileIndex &file : tree.files) {
        // Tests may probe synthetic names on purpose; they neither
        // anchor a catalog entry nor get name-drift checked.
        if (startsWith(file.path, "tests/"))
            continue;
        for (const FailpointSite &site : file.failpoints) {
            site_names.insert(site.name);
            if (!catalog.empty() && catalog.count(site.name) == 0) {
                const char *form =
                    site.macroSite ? "HLLC_FAILPOINT" : "shouldFail";
                report(findings, file.path, site.line, rule,
                       std::string(form) + "(\"" + site.name +
                       "\") is not in the closed catalog"
                       " (common/failpoint.cc allFailpoints());"
                       " a site missing there can never fire");
            }
        }
    }
    if (catalog_file != nullptr) {
        for (const CatalogEntry &entry : catalog_file->catalog) {
            if (site_names.count(entry.name) == 0) {
                report(findings, catalog_file->path, entry.line, rule,
                       "catalog entry \"" + entry.name +
                       "\" has no HLLC_FAILPOINT site left in the"
                       " tree; prune it or restore the site");
            }
        }
    }

    // Reachability: BFS along name-based call edges from every
    // function that contains a failpoint (macro or shouldFail form).
    std::map<std::string, std::vector<FnKey>> by_name;
    for (std::size_t f = 0; f < tree.files.size(); ++f) {
        const FileIndex &file = tree.files[f];
        for (std::size_t i = 0; i < file.functions.size(); ++i)
            by_name[file.functions[i].name].push_back({ f, i });
    }
    std::set<FnKey> covered;
    std::deque<FnKey> queue;
    for (std::size_t f = 0; f < tree.files.size(); ++f) {
        const FileIndex &file = tree.files[f];
        for (const FailpointSite &site : file.failpoints) {
            const std::size_t fn = functionAt(file, site.line);
            if (fn != SIZE_MAX && covered.insert({ f, fn }).second)
                queue.push_back({ f, fn });
        }
    }
    while (!queue.empty()) {
        const FnKey key = queue.front();
        queue.pop_front();
        const FileIndex &file = tree.files[key.first];
        const FunctionDef &fn = file.functions[key.second];
        for (const IdentRef &ref : file.refs) {
            if (ref.line < fn.bodyBegin || ref.line > fn.bodyEnd)
                continue;
            const auto it = by_name.find(file.symbols[ref.sym]);
            if (it == by_name.end())
                continue;
            for (const FnKey &callee : it->second) {
                if (covered.insert(callee).second)
                    queue.push_back(callee);
            }
        }
    }

    for (std::size_t f = 0; f < tree.files.size(); ++f) {
        const FileIndex &file = tree.files[f];
        if (startsWith(file.path, "src/common/serialize.") ||
            startsWith(file.path, "tests/")) {
            continue;
        }
        for (const SyscallSite &site : file.syscalls) {
            const std::size_t fn = functionAt(file, site.line);
            if (fn != SIZE_MAX && covered.count({ f, fn }) != 0)
                continue;
            const std::string where = fn == SIZE_MAX
                ? "outside any indexed function"
                : "in " + file.functions[fn].name + "()";
            report(findings, file.path, site.line, rule,
                   "fallible '" + site.name + "' call " + where +
                   " is not reachable from any compiled-in"
                   " HLLC_FAILPOINT; chaos runs cannot exercise this"
                   " failure path");
        }
    }
}

// ---------------------------------------------------------------- //
//  lock-discipline                                                 //
// ---------------------------------------------------------------- //

/** One guarded field with its declaring file attached. */
struct GuardedDecl
{
    const GuardedField *field;
    const FileIndex *declFile;
};

void
checkLockDiscipline(const TreeIndex &tree,
                    std::vector<Finding> &findings)
{
    static const char *const rule = "lock-discipline";

    std::map<std::string, std::vector<GuardedDecl>> by_name;
    for (const FileIndex &file : tree.files) {
        for (const GuardedField &field : file.guardedFields)
            by_name[field.name].push_back({ &field, &file });
    }
    if (by_name.empty())
        return;

    for (const FileIndex &file : tree.files) {
        // Fields visible here: declared in this file or in a directly
        // included project header.
        std::set<std::string> visible_paths = { file.path };
        for (const IncludeRef &inc : file.includes)
            visible_paths.insert("src/" + inc.path);

        for (const IdentRef &ref : file.refs) {
            const std::string &name = file.symbols[ref.sym];
            const auto decls = by_name.find(name);
            if (decls == by_name.end() || ref.qualified)
                continue;
            bool relevant = false;
            bool is_decl_line = false;
            bool locked = false;
            std::set<std::string> mutexes;
            std::set<std::string> owners;
            for (const GuardedDecl &decl : decls->second) {
                if (visible_paths.count(decl.declFile->path) == 0)
                    continue;
                relevant = true;
                mutexes.insert(decl.field->mutex);
                owners.insert(decl.field->klass);
                if (decl.declFile == &file &&
                    decl.field->line == ref.line) {
                    is_decl_line = true;
                }
            }
            if (!relevant || is_decl_line)
                continue;
            for (const LockScope &scope : file.lockScopes) {
                if (ref.line >= scope.beginLine &&
                    ref.line <= scope.endLine &&
                    mutexes.count(scope.mutex) != 0) {
                    locked = true;
                    break;
                }
            }
            if (locked)
                continue;
            const std::size_t fn = functionAt(file, ref.line);
            if (fn != SIZE_MAX) {
                const FunctionDef &def = file.functions[fn];
                // The owning class's constructor/destructor runs
                // single-owner; HLLC_REQUIRES(m) shifts the locking
                // obligation to the caller.
                if (owners.count(def.name) != 0)
                    continue;
                bool required = false;
                for (const std::string &m : def.requiresMutexes)
                    required = required || mutexes.count(m) != 0;
                if (required)
                    continue;
            }
            report(findings, file.path, ref.line, rule,
                   "'" + name + "' is HLLC_GUARDED_BY(" +
                   *mutexes.begin() + ") but is referenced without a"
                   " MutexLock on it in scope");
        }
    }
}

// ---------------------------------------------------------------- //
//  rng-discipline                                                  //
// ---------------------------------------------------------------- //

bool
seedDerived(const std::vector<std::string> &idents)
{
    for (const std::string &ident : idents) {
        if (ident == "childStream" || ident == "childSeed" ||
            ident == "fork" || ident == "mix64") {
            return true;
        }
        if (ident.find("seed") != std::string::npos ||
            ident.find("Seed") != std::string::npos) {
            return true;
        }
    }
    return false;
}

void
checkRngDiscipline(const TreeIndex &tree,
                   std::vector<Finding> &findings)
{
    static const char *const rule = "rng-discipline";

    for (const FileIndex &file : tree.files) {
        if (startsWith(file.path, "src/common/rng."))
            continue;
        const bool stream_scoped = startsWith(file.path, "src/sim/") ||
                                   startsWith(file.path, "src/serve/") ||
                                   startsWith(file.path, "src/ingest/");
        for (const RngSite &site : file.rngSites) {
            if (site.banned) {
                report(findings, file.path, site.line, rule,
                       "'" + site.name + "' outside common/rng: all"
                       " randomness must flow through the"
                       " Xoshiro256StarStar stream tree");
                continue;
            }
            if (stream_scoped && !seedDerived(site.seedIdents)) {
                report(findings, file.path, site.line, rule,
                       "Xoshiro256StarStar here is not seeded from"
                       " childStream/childSeed/fork or a seed-derived"
                       " expression; ad hoc seeds silently fork the"
                       " jobs=1 vs jobs=N determinism contract");
            }
        }
    }
}

// ---------------------------------------------------------------- //
//  schema-drift                                                    //
// ---------------------------------------------------------------- //

void
checkSchemaDrift(const TreeIndex &tree,
                 const std::map<std::string, std::set<std::string>>
                     &tables,
                 std::vector<Finding> &findings)
{
    static const char *const rule = "schema-drift";

    for (const auto &entry : schemaExporters()) {
        const std::string &schema = entry.first;
        const FileIndex *file = tree.byPath(entry.second);
        if (file == nullptr)
            continue; // exporter outside the walked paths
        const auto table = tables.find(schema);
        if (table == tables.end()) {
            report(findings, file->path, 1, rule,
                   "exporter of schema '" + schema +
                   "' has no `schema-keys: " + schema +
                   "` table in EXPERIMENTS.md");
            continue;
        }
        std::map<std::string, int> emitted;
        for (const JsonKey &key : file->jsonKeys)
            emitted.emplace(key.key, key.line);
        for (const auto &key : emitted) {
            if (table->second.count(key.first) == 0) {
                report(findings, file->path, key.second, rule,
                       "JSON key \"" + key.first +
                       "\" is not in the EXPERIMENTS.md schema-keys"
                       " table for '" + schema +
                       "'; document it or drop the field");
            }
        }
        for (const std::string &key : table->second) {
            if (emitted.count(key) == 0) {
                report(findings, file->path, 1, rule,
                       "documented key \"" + key + "\" of schema '" +
                       schema + "' is never emitted; the table and"
                       " the exporter have drifted apart");
            }
        }
    }
}

// ---------------------------------------------------------------- //
//  include-graph                                                   //
// ---------------------------------------------------------------- //

void
checkIncludeGraph(const TreeIndex &tree, std::vector<Finding> &findings)
{
    static const char *const rule = "include-graph";

    std::map<std::string, std::vector<std::string>> header_graph;
    for (const FileIndex &file : tree.files) {
        if (!endsWith(file.path, ".hh"))
            continue;
        std::vector<std::string> edges;
        for (const IncludeRef &inc : file.includes)
            edges.push_back("src/" + inc.path);
        header_graph[file.path] = std::move(edges);
    }
    lint::checkIncludeCycles(header_graph, findings);

    for (const FileIndex &file : tree.files) {
        const std::set<std::string> used = file.identifierSet();
        for (const IncludeRef &inc : file.includes) {
            const std::string resolved = "src/" + inc.path;
            const FileIndex *header = tree.byPath(resolved);
            if (header == nullptr || header == &file)
                continue;
            if (stemOf(resolved) == stemOf(file.path))
                continue; // a .cc always includes its own header
            bool any_decl = false;
            bool any_used = false;
            for (const Declaration &decl : header->decls) {
                any_decl = true;
                if (used.count(decl.name) != 0) {
                    any_used = true;
                    break;
                }
            }
            // A header providing nothing the indexer can see is given
            // the benefit of the doubt.
            if (any_decl && !any_used) {
                report(findings, file.path, inc.line, rule,
                       "include of \"" + inc.path + "\" is unused:"
                       " none of the names it declares are referenced"
                       " in this file");
            }
        }
    }
}

} // anonymous namespace

const FileIndex *
TreeIndex::byPath(const std::string &path) const
{
    for (const FileIndex &file : files) {
        if (file.path == path)
            return &file;
    }
    return nullptr;
}

const std::map<std::string, std::string> &
schemaExporters()
{
    static const std::map<std::string, std::string> exporters = {
        { "hllc-stats-v1", "src/common/metrics.cc" },
        { "hllc-bench-v1", "bench/bench_micro.cpp" },
        { "hllc-serve-bench-v1", "tools/hllc_loadgen.cpp" },
        { "hllc-ingest-v1", "tools/hllc_ingest.cpp" },
        { "hllc-failures-v1", "src/sim/resilience.cc" },
        { "hllc-lint-v1", "src/lint/lint.cc" },
    };
    return exporters;
}

std::map<std::string, std::set<std::string>>
parseSchemaTables(const std::string &text)
{
    std::map<std::string, std::set<std::string>> tables;
    static const std::string marker = "schema-keys:";

    std::vector<std::string> lines;
    std::string current;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(std::move(current));
            current.clear();
        } else if (c != '\r') {
            current += c;
        }
    }
    lines.push_back(std::move(current));

    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (lines[i].rfind(marker, 0) != 0)
            continue;
        std::string schema = lines[i].substr(marker.size());
        schema.erase(0, schema.find_first_not_of(" \t"));
        const std::size_t end = schema.find_last_not_of(" \t");
        schema = end == std::string::npos ? "" : schema.substr(0, end + 1);
        if (schema.empty())
            continue;
        std::set<std::string> &keys = tables[schema];
        for (std::size_t j = i + 1; j < lines.size(); ++j) {
            const std::string &line = lines[j];
            if (line.empty() || line.rfind("```", 0) == 0)
                break;
            std::string word;
            for (char c : line + " ") {
                if (std::isspace(static_cast<unsigned char>(c))) {
                    if (!word.empty() && word[0] != '#')
                        keys.insert(word);
                    word.clear();
                } else {
                    word += c;
                }
            }
        }
    }
    return tables;
}

std::vector<Finding>
runSemanticEngines(const TreeIndex &tree,
                   const std::map<std::string, std::set<std::string>>
                       &schemaTables,
                   const lint::Options &rules)
{
    std::vector<Finding> findings;
    if (rules.ruleEnabled("failpoint-coverage"))
        checkFailpointCoverage(tree, findings);
    if (rules.ruleEnabled("lock-discipline"))
        checkLockDiscipline(tree, findings);
    if (rules.ruleEnabled("rng-discipline"))
        checkRngDiscipline(tree, findings);
    if (rules.ruleEnabled("schema-drift"))
        checkSchemaDrift(tree, schemaTables, findings);
    if (rules.ruleEnabled("include-graph"))
        checkIncludeGraph(tree, findings);
    return findings;
}

} // namespace hllc::analysis
