#include "analysis/analysis.hh"

#include <algorithm>
#include <filesystem>
#include <iterator>
#include <map>

#include "analysis/engines.hh"
#include "common/error.hh"
#include "common/numfmt.hh"
#include "common/serialize.hh"

namespace fs = std::filesystem;

namespace hllc::analysis
{

namespace
{

// 'H' 'L' 'N' 'T' — the incremental lint cache container.
constexpr std::uint32_t kCacheMagic = 0x484c4e54u;
constexpr std::uint32_t kCacheVersion = 1;
/** Bump whenever indexer or engine semantics change. */
constexpr std::uint32_t kEngineVersion = 1;

std::string
readFile(const fs::path &path)
{
    const std::vector<std::uint8_t> bytes =
        serial::readFileBytes(path.string());
    return std::string(bytes.begin(), bytes.end());
}

/** One cached file record: index + token-level findings. */
struct CacheEntry
{
    FileIndex index;
    std::vector<lint::Finding> findings;
};

/** Order-independent FNV-1a over the disabled-rule set. */
std::uint64_t
ruleSignature(const lint::Options &rules)
{
    std::vector<std::string> disabled = rules.disabledRules;
    std::sort(disabled.begin(), disabled.end());
    std::string joined;
    for (const std::string &rule : disabled)
        joined += rule + "\n";
    return contentHash(joined);
}

void
encodeFindings(serial::Encoder &enc,
               const std::vector<lint::Finding> &findings)
{
    enc.u32(static_cast<std::uint32_t>(findings.size()));
    for (const lint::Finding &finding : findings) {
        enc.str(finding.file);
        enc.u32(static_cast<std::uint32_t>(finding.line));
        enc.str(finding.rule);
        enc.str(finding.message);
        enc.str(finding.lineText);
    }
}

std::vector<lint::Finding>
decodeFindings(serial::Decoder &dec)
{
    std::vector<lint::Finding> findings;
    const std::uint32_t count = dec.u32();
    findings.reserve(std::min<std::uint32_t>(count, 4096));
    for (std::uint32_t i = 0; i < count; ++i) {
        lint::Finding finding;
        finding.file = dec.str();
        finding.line = static_cast<int>(dec.u32());
        finding.rule = dec.str();
        finding.message = dec.str();
        finding.lineText = dec.str(1 << 16);
        findings.push_back(std::move(finding));
    }
    return findings;
}

/**
 * Load the cache into a path-keyed map. Any structural problem — bad
 * magic, version skew, CRC mismatch, rule-set change — yields an empty
 * map: the cache is advisory, never authoritative.
 */
std::map<std::string, CacheEntry>
loadCache(const std::string &path, const lint::Options &rules)
{
    std::map<std::string, CacheEntry> entries;
    if (path.empty())
        return entries;
    std::error_code ec;
    if (!fs::is_regular_file(path, ec))
        return entries;
    try {
        const serial::Container box = serial::Container::load(
            path, kCacheMagic, kCacheVersion, kCacheVersion);
        serial::Decoder meta = box.open("meta");
        if (meta.u32() != kEngineVersion ||
            meta.u64() != ruleSignature(rules)) {
            return entries;
        }
        serial::Decoder dec = box.open("files");
        const std::uint32_t count = dec.u32();
        for (std::uint32_t i = 0; i < count; ++i) {
            CacheEntry entry;
            entry.index = decodeFileIndex(dec);
            entry.findings = decodeFindings(dec);
            std::string key = entry.index.path;
            entries.emplace(std::move(key), std::move(entry));
        }
    } catch (const IoError &) {
        entries.clear();
    }
    return entries;
}

void
saveCache(const std::string &path, const lint::Options &rules,
          const std::vector<CacheEntry> &entries)
{
    if (path.empty())
        return;
    serial::Container box;
    serial::Encoder &meta = box.add("meta");
    meta.u32(kEngineVersion);
    meta.u64(ruleSignature(rules));
    serial::Encoder &enc = box.add("files");
    enc.u32(static_cast<std::uint32_t>(entries.size()));
    for (const CacheEntry &entry : entries) {
        encodeFileIndex(enc, entry.index);
        encodeFindings(enc, entry.findings);
    }
    try {
        box.save(path, kCacheMagic, kCacheVersion);
    } catch (const IoError &) {
        // A read-only checkout still lints; it just stays cold.
    }
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string current;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(std::move(current));
            current.clear();
        } else if (c != '\r') {
            current += c;
        }
    }
    lines.push_back(std::move(current));
    return lines;
}

std::string
trimmed(const std::string &line)
{
    const std::size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    const std::size_t end = line.find_last_not_of(" \t");
    return line.substr(begin, end - begin + 1);
}

/** SARIF-adequate JSON string escaping (mirrors lint.cc's). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += "\\u00";
                const char *hex = "0123456789abcdef";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // anonymous namespace

lint::RunResult
analyzeTree(const std::string &root, const RunOptions &options,
            RunStats *stats)
{
    lint::RunResult result;
    const fs::path root_path = root.empty() ? fs::path(".")
                                            : fs::path(root);
    const std::vector<std::string> files =
        lint::collectLintFiles(root, options.paths);

    std::map<std::string, CacheEntry> cached =
        loadCache(options.cachePath, options.rules);

    TreeIndex tree;
    tree.files.reserve(files.size());
    std::vector<CacheEntry> fresh_cache;
    fresh_cache.reserve(files.size());
    std::map<std::string, std::vector<std::string>> file_lines;
    std::size_t cache_hits = 0;

    for (const std::string &file : files) {
        const std::string content = readFile(root_path / file);
        file_lines[file] = splitLines(content);
        const std::uint64_t hash = contentHash(content);

        const auto hit = cached.find(file);
        if (hit != cached.end() &&
            hit->second.index.contentHash == hash) {
            ++cache_hits;
            fresh_cache.push_back(hit->second);
        } else {
            CacheEntry entry;
            entry.index = buildFileIndex(file, content);
            entry.findings =
                lint::lintSource(file, content, options.rules);
            fresh_cache.push_back(std::move(entry));
        }
        const CacheEntry &entry = fresh_cache.back();
        tree.files.push_back(entry.index);
        result.findings.insert(result.findings.end(),
                               entry.findings.begin(),
                               entry.findings.end());
        ++result.filesScanned;
    }

    // The cross-file engines always run live: they are cheap relative
    // to lexing, and any file's change can shift another's verdict.
    std::map<std::string, std::set<std::string>> schema_tables;
    {
        const fs::path experiments = root_path / "EXPERIMENTS.md";
        std::error_code ec;
        if (fs::is_regular_file(experiments, ec))
            schema_tables = parseSchemaTables(readFile(experiments));
    }
    std::vector<lint::Finding> semantic =
        runSemanticEngines(tree, schema_tables, options.rules);

    // Semantic findings honour the same inline waivers lintSource()
    // applies, and get their baseline fingerprint filled here.
    for (lint::Finding &finding : semantic) {
        const FileIndex *file = tree.byPath(finding.file);
        bool waived = false;
        if (file != nullptr) {
            for (const lint::Waiver &waiver : file->waivers) {
                waived = waived ||
                         waiver.covers(finding.rule, finding.line);
            }
        }
        if (waived)
            continue;
        const auto lines = file_lines.find(finding.file);
        if (lines != file_lines.end() && finding.line >= 1 &&
            static_cast<std::size_t>(finding.line) <=
                lines->second.size()) {
            finding.lineText = trimmed(lines->second[finding.line - 1]);
        }
        result.findings.push_back(std::move(finding));
    }

    saveCache(options.cachePath, options.rules, fresh_cache);

    if (!options.baselinePath.empty()) {
        lint::subtractBaseline(
            readFile(root_path / options.baselinePath), result);
    }

    std::stable_sort(result.findings.begin(), result.findings.end(),
                     [](const lint::Finding &a, const lint::Finding &b) {
                         return a.file != b.file ? a.file < b.file
                                                 : a.line < b.line;
                     });
    if (stats != nullptr) {
        stats->filesIndexed = files.size();
        stats->cacheHits = cache_hits;
    }
    return result;
}

std::string
formatSarif(const lint::RunResult &result)
{
    std::string out =
        "{\n"
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"runs\": [\n"
        "    {\n"
        "      \"tool\": {\n"
        "        \"driver\": {\n"
        "          \"name\": \"hllc_lint\",\n"
        "          \"rules\": [";
    bool first = true;
    for (const std::string &rule : lint::allRules()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "            {\"id\": \"" + jsonEscape(rule) + "\"}";
    }
    out += "\n          ]\n"
           "        }\n"
           "      },\n"
           "      \"results\": [";
    first = true;
    for (const lint::Finding &finding : result.findings) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "        {\"ruleId\": \"" + jsonEscape(finding.rule) +
               "\", \"level\": \"error\", \"message\": {\"text\": \"" +
               jsonEscape(finding.message) +
               "\"}, \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \"" +
               jsonEscape(finding.file) +
               "\"}, \"region\": {\"startLine\": " +
               formatU64(static_cast<std::uint64_t>(
                   finding.line < 1 ? 1 : finding.line)) +
               "}}}]}";
    }
    out += first ? "]\n" : "\n      ]\n";
    out += "    }\n  ]\n}\n";
    return out;
}

} // namespace hllc::analysis
