/**
 * @file
 * The five semantic rule engines over the merged tree index.
 *
 * Each engine enforces one cross-file contract that the token-level
 * rules in lint/rules.cc cannot see (DESIGN.md §14 maps each rule to
 * the incident that motivated it):
 *
 *  - `failpoint-coverage`: every fallible syscall wrapper site
 *    (`::open`, `::write`, `::rename`, `::fsync`, `::fork`) outside
 *    common/serialize must be reachable — through the name-based call
 *    graph — from a function containing a compiled-in HLLC_FAILPOINT,
 *    and the name literals at HLLC_FAILPOINT sites must exactly match
 *    the closed catalog in common/failpoint.cc, in both directions.
 *  - `lock-discipline`: a field annotated HLLC_GUARDED_BY(m) may only
 *    be referenced inside a scope holding `MutexLock lock(m)` (or in a
 *    function annotated HLLC_REQUIRES(m), or the owning class's
 *    constructor/destructor). This is the GCC-side stand-in for
 *    Clang's -Wthread-safety, which only the clang-tsa CI job runs.
 *  - `rng-discipline`: no std::mt19937 / rand() / random_device
 *    anywhere outside common/rng, and Xoshiro256StarStar constructions
 *    in sim/serve/ingest must be seeded from childStream / childSeed /
 *    fork / a seed-derived expression — ad hoc seeds fork the
 *    determinism contract silently.
 *  - `schema-drift`: the literal JSON keys each hllc-*-v1 exporter
 *    emits must equal the schema-keys table in EXPERIMENTS.md —
 *    renaming or adding an export field without documenting it is a
 *    finding in both directions.
 *  - `include-graph`: include cycles among project headers, plus
 *    symbol-level unused-include detection (an include none of whose
 *    declared names the includer references).
 *
 * Engines only *read* the index; findings carry file/line/rule/message
 * and the driver (analysis.cc) fills the lineText fingerprint.
 */

#ifndef HLLC_ANALYSIS_ENGINES_HH
#define HLLC_ANALYSIS_ENGINES_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/index.hh"
#include "lint/rules.hh"

namespace hllc::analysis
{

/** The whole-tree symbol table: one FileIndex per walked file. */
struct TreeIndex
{
    std::vector<FileIndex> files;

    /** The index of @p path, or null when it was not walked. */
    const FileIndex *byPath(const std::string &path) const;
};

/**
 * The authoritative exporter for each documented schema. Hardcoded —
 * like lint/rules.cc layerDeps() — so that a stray string literal
 * `"hllc-stats-v1"` in a test or in the torture driver's output
 * matcher can never be mistaken for an exporter.
 */
const std::map<std::string, std::string> &schemaExporters();

/**
 * Parse the `schema-keys: <name>` tables out of EXPERIMENTS.md text:
 * each table starts with that marker line and lists whitespace-
 * separated key names on the following lines, ending at a blank line
 * or a code fence.
 */
std::map<std::string, std::set<std::string>>
parseSchemaTables(const std::string &text);

/**
 * Run every semantic engine enabled in @p rules over @p tree.
 * @p schemaTables comes from parseSchemaTables() over EXPERIMENTS.md
 * (empty when the file is absent). Findings come back unsorted and
 * without lineText; the driver fills and orders them.
 */
std::vector<lint::Finding>
runSemanticEngines(const TreeIndex &tree,
                   const std::map<std::string, std::set<std::string>>
                       &schemaTables,
                   const lint::Options &rules);

} // namespace hllc::analysis

#endif // HLLC_ANALYSIS_ENGINES_HH
