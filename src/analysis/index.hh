/**
 * @file
 * The per-TU symbol indexer behind the semantic lint rules.
 *
 * lint/rules.hh reasons about one token at a time; the five semantic
 * rules (failpoint-coverage, lock-discipline, rng-discipline,
 * schema-drift, include-graph) need to know *what the tokens mean
 * across files*: which function a syscall lives in, which header
 * declares a name, which MutexLock scope covers a guarded-field
 * reference. This indexer extracts exactly that — declarations,
 * identifier references, call sites, string literals with location,
 * function extents, failpoint/guard/lock annotations — from the
 * existing lint::Lexer token stream, one FileIndex per file, merged
 * into a TreeIndex by the analysis driver.
 *
 * It is a heuristic indexer, not a compiler: function extents come from
 * brace tracking, call-graph edges from name references. The engines
 * are written so that imprecision degrades toward false negatives (a
 * missed finding), never toward a finding on correct code.
 *
 * Every structure round-trips through serial::Encoder/Decoder: the
 * incremental cache (.hllc-lint-cache) persists a FileIndex per file,
 * keyed by content hash, so a warm full-tree run re-lexes only what
 * changed.
 */

#ifndef HLLC_ANALYSIS_INDEX_HH
#define HLLC_ANALYSIS_INDEX_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "lint/rules.hh"

namespace hllc::analysis
{

/** What kind of name a Declaration introduces. */
enum class DeclKind : std::uint8_t
{
    Function,   //!< free function, method, constructor
    Type,       //!< class / struct / union / enum name
    Enumerator, //!< one enum member
    Macro,      //!< #define name
    Alias,      //!< `using X = ...` / typedef
    Variable,   //!< namespace-scope variable / constant or data member
};

/** One name a file introduces (the "provides" set of a header). */
struct Declaration
{
    std::string name;
    DeclKind kind = DeclKind::Function;
    int line = 0;
};

/** One function (or method) definition with a brace-tracked body. */
struct FunctionDef
{
    std::string name;      //!< unqualified
    std::string qualifier; //!< `Class` for `Class::name` / enclosing class
    int line = 0;          //!< line of the definition head
    int bodyBegin = 0;     //!< line of the body's opening brace
    int bodyEnd = 0;       //!< line of the matching closing brace
    /** Mutex names from an HLLC_REQUIRES(...) on the definition. */
    std::vector<std::string> requiresMutexes;
};

/** One identifier occurrence (code tokens only, keywords excluded). */
struct IdentRef
{
    std::uint32_t sym = 0; //!< index into FileIndex::symbols
    int line = 0;
    bool called = false;    //!< directly followed by '('
    bool qualified = false; //!< preceded by `Ns::` (so not a member)
};

/** One `::open(` / bare `open(` style fallible-syscall call. */
struct SyscallSite
{
    std::string name; //!< open / write / rename / fsync / fork
    int line = 0;
};

/** One HLLC_FAILPOINT("name") or shouldFail("name") literal site. */
struct FailpointSite
{
    std::string name; //!< the string literal
    int line = 0;
    bool macroSite = false; //!< true for HLLC_FAILPOINT, not shouldFail
};

/** One string entry of the closed catalog in allFailpoints(). */
struct CatalogEntry
{
    std::string name;
    int line = 0;
};

/** One field declared with HLLC_GUARDED_BY(mutex). */
struct GuardedField
{
    std::string name;
    std::string klass; //!< innermost enclosing class/struct
    std::string mutex; //!< last identifier of the annotation argument
    int line = 0;
};

/** The lines covered by one `MutexLock lock(expr);` scope. */
struct LockScope
{
    std::string mutex; //!< last identifier of the lock expression
    int beginLine = 0;
    int endLine = 0;
};

/** One RNG construction / banned-generator use for rng-discipline. */
struct RngSite
{
    std::string name; //!< Xoshiro256StarStar, mt19937, rand, ...
    int line = 0;
    /** Identifiers in the initializer (empty for banned generators). */
    std::vector<std::string> seedIdents;
    bool banned = false; //!< a generator that is never allowed here
};

/** One literal JSON object key (`\"key\":`) inside a string literal. */
struct JsonKey
{
    std::string key;
    int line = 0;
};

/** One project `#include "..."` with its line. */
struct IncludeRef
{
    std::string path; //!< as written, e.g. common/rng.hh
    int line = 0;
};

/** Everything the semantic engines need to know about one file. */
struct FileIndex
{
    std::string path;             //!< repo-relative, forward slashes
    std::uint64_t contentHash = 0;
    std::vector<IncludeRef> includes;
    std::vector<Declaration> decls;
    std::vector<FunctionDef> functions;
    std::vector<std::string> symbols; //!< de-duplicated identifier texts
    std::vector<IdentRef> refs;
    std::vector<SyscallSite> syscalls;
    std::vector<FailpointSite> failpoints;
    std::vector<CatalogEntry> catalog; //!< strings in allFailpoints()
    std::vector<GuardedField> guardedFields;
    std::vector<LockScope> lockScopes;
    std::vector<RngSite> rngSites;
    std::vector<JsonKey> jsonKeys;
    /** Inline waivers, kept here so the cache preserves them. */
    std::vector<lint::Waiver> waivers;

    /** The de-duplicated set of identifier texts the file mentions. */
    std::set<std::string> identifierSet() const;
};

/** FNV-1a 64 over @p text — the cache key for one file's content. */
std::uint64_t contentHash(const std::string &text);

/** Build the index of one file from its text. */
FileIndex buildFileIndex(const std::string &path,
                         const std::string &content);

/** Cache round-trip (format owned by analysis/analysis.cc). */
void encodeFileIndex(serial::Encoder &enc, const FileIndex &index);
FileIndex decodeFileIndex(serial::Decoder &dec);

} // namespace hllc::analysis

#endif // HLLC_ANALYSIS_INDEX_HH
