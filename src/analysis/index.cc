#include "analysis/index.hh"

#include <cctype>
#include <map>

#include "lint/lexer.hh"

namespace hllc::analysis
{

namespace
{

using lint::Token;
using lint::TokKind;

/**
 * Keywords never recorded as references: they carry no cross-file
 * meaning, and dropping them keeps the per-file symbol table (and so
 * the cache) small.
 */
const std::set<std::string> &
keywords()
{
    static const std::set<std::string> words = {
        "alignas",  "alignof",  "auto",      "bool",     "break",
        "case",     "catch",    "char",      "class",    "const",
        "constexpr", "const_cast", "continue", "decltype", "default",
        "delete",   "do",       "double",    "dynamic_cast", "else",
        "enum",     "explicit", "extern",    "false",    "final",
        "float",    "for",      "friend",    "goto",     "if",
        "inline",   "int",      "long",      "mutable",  "namespace",
        "new",      "noexcept", "nullptr",   "operator", "override",
        "private",  "protected", "public",   "register", "reinterpret_cast",
        "return",   "short",    "signed",    "sizeof",   "static",
        "static_assert", "static_cast", "struct", "switch", "template",
        "this",     "throw",    "true",      "try",      "typedef",
        "typeid",   "typename", "union",     "unsigned", "using",
        "virtual",  "void",     "volatile",  "while",
    };
    return words;
}

/** Keywords that open a plain control-flow block, never a function. */
const std::set<std::string> &
controlKeywords()
{
    static const std::set<std::string> words = {
        "if", "else", "for", "while", "switch", "do", "try", "catch",
    };
    return words;
}

bool
isIdent(const std::vector<Token> &code, std::size_t i)
{
    return i < code.size() && code[i].kind == TokKind::Identifier;
}

bool
isPunct(const std::vector<Token> &code, std::size_t i, char c)
{
    return i < code.size() && code[i].kind == TokKind::Punct &&
           code[i].text.size() == 1 && code[i].text[0] == c;
}

/** `.x` or `->x` directly before code[i]. */
bool
memberAccessBefore(const std::vector<Token> &code, std::size_t i)
{
    if (i >= 1 && isPunct(code, i - 1, '.'))
        return true;
    return i >= 2 && isPunct(code, i - 2, '-') && isPunct(code, i - 1, '>');
}

/** `::x` with nothing (or a non-identifier) before the `::`. */
bool
globalQualified(const std::vector<Token> &code, std::size_t i)
{
    if (i < 2 || !isPunct(code, i - 1, ':') || !isPunct(code, i - 2, ':'))
        return false;
    if (i < 3 || code[i - 3].kind != TokKind::Identifier)
        return true;
    // `return ::open(...)`: a statement keyword before `::` does not
    // qualify the name; only a real scope name does.
    static const std::set<std::string> statement_keywords = {
        "return", "throw", "co_return", "co_yield", "else", "do",
    };
    return statement_keywords.count(code[i - 3].text) != 0;
}

/** Index just past the `)` matching the `(` at @p open. */
std::size_t
matchParen(const std::vector<Token> &code, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
        if (isPunct(code, i, '('))
            ++depth;
        else if (isPunct(code, i, ')') && --depth == 0)
            return i + 1;
    }
    return code.size();
}

/** Last identifier text in code[(begin, end)); "" when none. */
std::string
lastIdentIn(const std::vector<Token> &code, std::size_t begin,
            std::size_t end)
{
    std::string last;
    for (std::size_t i = begin; i < end && i < code.size(); ++i) {
        if (code[i].kind == TokKind::Identifier)
            last = code[i].text;
    }
    return last;
}

/** The block-context classifier's verdict for one `{`. */
enum class CtxKind
{
    Namespace,
    Class,
    Enum,
    Function,
    Block,
};

/** One open brace on the context stack. */
struct Ctx
{
    CtxKind kind = CtxKind::Block;
    std::string name;              //!< class or function name
    std::size_t fnIndex = SIZE_MAX; //!< FunctionDef slot when Function
    std::vector<std::size_t> locks; //!< LockScopes this brace closes
};

/**
 * Start of the head of the `{` at @p brace: scan back to the nearest
 * `;` / `{` / `}` at paren balance zero (so `for (a; b; c) {` keeps its
 * whole head).
 */
std::size_t
headBegin(const std::vector<Token> &code, std::size_t brace)
{
    int balance = 0;
    std::size_t i = brace;
    while (i > 0) {
        --i;
        if (isPunct(code, i, ')'))
            ++balance;
        else if (isPunct(code, i, '('))
            --balance;
        else if (balance == 0 &&
                 (isPunct(code, i, ';') || isPunct(code, i, '{') ||
                  isPunct(code, i, '}'))) {
            return i + 1;
        }
    }
    return 0;
}

/** First identifier after @p from that is not a macro call `NAME(...)`. */
std::string
nameAfterKeyword(const std::vector<Token> &code, std::size_t from,
                 std::size_t end)
{
    for (std::size_t i = from; i < end; ++i) {
        if (!isIdent(code, i))
            continue;
        if (code[i].text == "class" || code[i].text == "struct" ||
            code[i].text == "union" || code[i].text == "enum" ||
            code[i].text == "final") {
            continue; // enum class X / struct X final
        }
        if (isPunct(code, i + 1, '(')) {
            i = matchParen(code, i + 1) - 1; // attribute macro
            continue;
        }
        return code[i].text;
    }
    return "";
}

/** Per-file indexing pass (one instance per buildFileIndex call). */
struct Indexer
{
    const std::string &path;
    const std::vector<Token> &code;
    FileIndex out;
    std::map<std::string, std::uint32_t> symIds;
    std::vector<Ctx> stack;
    int lastLine = 1;

    std::uint32_t
    symbol(const std::string &text)
    {
        const auto it = symIds.find(text);
        if (it != symIds.end())
            return it->second;
        const auto id = static_cast<std::uint32_t>(out.symbols.size());
        out.symbols.push_back(text);
        symIds.emplace(text, id);
        return id;
    }

    CtxKind
    innermost() const
    {
        return stack.empty() ? CtxKind::Namespace : stack.back().kind;
    }

    /** Innermost enclosing class/struct name ("" at other scopes). */
    std::string
    enclosingClass() const
    {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (it->kind == CtxKind::Class)
                return it->name;
        }
        return "";
    }

    bool
    inFunctionNamed(const std::string &name) const
    {
        for (const Ctx &ctx : stack) {
            if (ctx.kind == CtxKind::Function && ctx.name == name)
                return true;
        }
        return false;
    }

    bool
    inFunctionBody() const
    {
        for (const Ctx &ctx : stack) {
            if (ctx.kind == CtxKind::Function)
                return true;
        }
        return false;
    }

    /** Declaration-scope = namespace/class body, not inside any code. */
    bool
    atDeclScope() const
    {
        const CtxKind kind = innermost();
        return (kind == CtxKind::Namespace || kind == CtxKind::Class) &&
               !inFunctionBody();
    }

    void declare(std::string name, DeclKind kind, int line);
    void classifyBrace(std::size_t brace);
    void handleIdent(std::size_t i);
    void run();
};

void
Indexer::declare(std::string name, DeclKind kind, int line)
{
    if (name.empty() || keywords().count(name) != 0)
        return;
    out.decls.push_back({ std::move(name), kind, line });
}

void
Indexer::classifyBrace(std::size_t brace)
{
    Ctx ctx;
    const std::size_t begin = headBegin(code, brace);

    bool has_assign = false;
    bool has_control = false;
    bool has_namespace = false;
    bool has_class = false;
    bool has_enum = false;
    for (std::size_t i = begin; i < brace; ++i) {
        if (code[i].kind == TokKind::Identifier) {
            if (controlKeywords().count(code[i].text) != 0)
                has_control = true;
            else if (code[i].text == "namespace")
                has_namespace = true;
            else if (code[i].text == "class" ||
                     code[i].text == "struct" ||
                     code[i].text == "union") {
                has_class = true;
            } else if (code[i].text == "enum") {
                has_enum = true;
            }
        } else if (isPunct(code, i, '=')) {
            has_assign = true;
        }
    }

    if (inFunctionBody() || has_control || has_assign) {
        ctx.kind = CtxKind::Block; // statement, lambda or initializer
    } else if (has_namespace) {
        ctx.kind = CtxKind::Namespace;
    } else if (has_enum) {
        ctx.kind = CtxKind::Enum;
        ctx.name = nameAfterKeyword(code, begin, brace);
        declare(ctx.name, DeclKind::Type, code[brace].line);
    } else if (has_class) {
        ctx.kind = CtxKind::Class;
        for (std::size_t i = begin; i < brace; ++i) {
            if (isIdent(code, i) && (code[i].text == "class" ||
                                     code[i].text == "struct" ||
                                     code[i].text == "union")) {
                ctx.name = nameAfterKeyword(code, i + 1, brace);
                break;
            }
        }
        declare(ctx.name, DeclKind::Type, code[brace].line);
    } else {
        // A function definition iff the head holds `name(...)`.
        for (std::size_t i = begin; i < brace; ++i) {
            if (!isIdent(code, i) || !isPunct(code, i + 1, '(') ||
                keywords().count(code[i].text) != 0) {
                continue;
            }
            FunctionDef fn;
            fn.name = code[i].text;
            fn.line = code[begin].line;
            fn.bodyBegin = code[brace].line;
            // `A::B::name` written qualifier, innermost first.
            std::size_t j = i;
            while (j >= 3 && isPunct(code, j - 1, ':') &&
                   isPunct(code, j - 2, ':') && isIdent(code, j - 3)) {
                fn.qualifier = fn.qualifier.empty()
                    ? code[j - 3].text
                    : code[j - 3].text + "::" + fn.qualifier;
                j -= 3;
            }
            if (fn.qualifier.empty())
                fn.qualifier = enclosingClass();
            // HLLC_REQUIRES(m) between the parameter list and the body.
            for (std::size_t k = matchParen(code, i + 1); k < brace;
                 ++k) {
                if (isIdent(code, k) &&
                    code[k].text == "HLLC_REQUIRES" &&
                    isPunct(code, k + 1, '(')) {
                    const std::size_t close = matchParen(code, k + 1);
                    for (std::size_t a = k + 2; a + 1 < close; ++a) {
                        if (isIdent(code, a))
                            fn.requiresMutexes.push_back(code[a].text);
                    }
                }
            }
            ctx.kind = CtxKind::Function;
            ctx.name = fn.name;
            ctx.fnIndex = out.functions.size();
            declare(fn.name, DeclKind::Function, fn.line);
            out.functions.push_back(std::move(fn));
            break;
        }
    }
    stack.push_back(std::move(ctx));
}

void
Indexer::handleIdent(std::size_t i)
{
    const Token &tok = code[i];
    const bool called = isPunct(code, i + 1, '(');

    if (keywords().count(tok.text) == 0) {
        const bool qualified = i >= 3 && isPunct(code, i - 1, ':') &&
                               isPunct(code, i - 2, ':') &&
                               isIdent(code, i - 3);
        out.refs.push_back(
            { symbol(tok.text), tok.line, called, qualified });
    }

    // Enumerators: `A,` / `A = ...` / `A }` directly inside an enum.
    if (innermost() == CtxKind::Enum &&
        (isPunct(code, i + 1, ',') || isPunct(code, i + 1, '}') ||
         isPunct(code, i + 1, '='))) {
        declare(tok.text, DeclKind::Enumerator, tok.line);
    }

    if (atDeclScope()) {
        // `using X = ...` alias.
        if (tok.text == "using" && isIdent(code, i + 1) &&
            isPunct(code, i + 2, '=')) {
            declare(code[i + 1].text, DeclKind::Alias,
                    code[i + 1].line);
        }
        // `T name(...)` declarations and `T name = / ; / { / [` data.
        const bool type_before = i >= 1 &&
            ((isIdent(code, i - 1) &&
              controlKeywords().count(code[i - 1].text) == 0 &&
              code[i - 1].text != "return" &&
              code[i - 1].text != "throw") ||
             isPunct(code, i - 1, '>') || isPunct(code, i - 1, '*') ||
             isPunct(code, i - 1, '&') || isPunct(code, i - 1, '~'));
        if (type_before && keywords().count(tok.text) == 0) {
            if (called) {
                declare(tok.text, DeclKind::Function, tok.line);
            } else if (isPunct(code, i + 1, ';') ||
                       isPunct(code, i + 1, '=') ||
                       isPunct(code, i + 1, '{') ||
                       isPunct(code, i + 1, '[')) {
                declare(tok.text, DeclKind::Variable, tok.line);
            }
        }
        // `class X;` / `struct X;` forward declarations.
        if ((tok.text == "class" || tok.text == "struct" ||
             tok.text == "union") &&
            isIdent(code, i + 1) && isPunct(code, i + 2, ';')) {
            declare(code[i + 1].text, DeclKind::Type,
                    code[i + 1].line);
        }
    }

    // HLLC_FAILPOINT("name") / shouldFail("name") literal sites.
    if ((tok.text == "HLLC_FAILPOINT" || tok.text == "shouldFail") &&
        isPunct(code, i + 1, '(') && i + 2 < code.size() &&
        code[i + 2].kind == TokKind::String) {
        out.failpoints.push_back({ code[i + 2].text, tok.line,
                                   tok.text == "HLLC_FAILPOINT" });
    }

    // The closed catalog: string literals inside allFailpoints().
    // (Collected for every file; the engine only consults
    // common/failpoint.cc.)
    // -- handled in run() for String tokens.

    // Fields annotated HLLC_GUARDED_BY(m).
    if (tok.text == "HLLC_GUARDED_BY" && isPunct(code, i + 1, '(') &&
        i >= 1 && isIdent(code, i - 1)) {
        const std::size_t close = matchParen(code, i + 1);
        GuardedField field;
        field.name = code[i - 1].text;
        field.klass = enclosingClass();
        field.mutex = lastIdentIn(code, i + 2, close - 1);
        // The *name's* line, not the macro's: a declaration wrapped
        // across lines must still match its own reference.
        field.line = code[i - 1].line;
        if (!field.mutex.empty())
            out.guardedFields.push_back(std::move(field));
    }

    // `MutexLock lock(expr);` — the scope runs to the end of the
    // enclosing brace, recorded when that brace closes.
    if (tok.text == "MutexLock" && isIdent(code, i + 1) &&
        isPunct(code, i + 2, '(')) {
        const std::size_t close = matchParen(code, i + 2);
        LockScope scope;
        scope.mutex = lastIdentIn(code, i + 3, close - 1);
        scope.beginLine = tok.line;
        if (!scope.mutex.empty() && !stack.empty()) {
            stack.back().locks.push_back(out.lockScopes.size());
            out.lockScopes.push_back(std::move(scope));
        }
    }

    // Fallible syscall wrappers for failpoint-coverage.
    static const std::set<std::string> syscalls = {
        "open", "write", "rename", "fsync", "fork",
    };
    if (syscalls.count(tok.text) != 0 && called &&
        !memberAccessBefore(code, i)) {
        bool site = globalQualified(code, i);
        if (!site && !(i >= 2 && isPunct(code, i - 1, ':') &&
                       isPunct(code, i - 2, ':'))) {
            // Unqualified: only clear call syntax counts (`= write(`,
            // `if (fsync(`, `return fork()`); an identifier or `*`/`&`
            // before the name reads as a declaration and is skipped.
            if (i == 0) {
                site = false;
            } else if (code[i - 1].kind == TokKind::Identifier) {
                site = code[i - 1].text == "return" ||
                       code[i - 1].text == "throw";
            } else if (code[i - 1].kind == TokKind::Punct) {
                static const std::string callish = "=(,;{!?:|";
                site = code[i - 1].text.size() == 1 &&
                       callish.find(code[i - 1].text[0]) !=
                           std::string::npos;
            }
        }
        if (site && inFunctionBody())
            out.syscalls.push_back({ tok.text, tok.line });
    }

    // rng-discipline sites.
    static const std::set<std::string> banned_engines = {
        "mt19937",      "mt19937_64",    "random_device",
        "default_random_engine",          "minstd_rand",
        "minstd_rand0", "ranlux24",      "ranlux48",
        "knuth_b",
    };
    static const std::set<std::string> banned_calls = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48",
    };
    if (!memberAccessBefore(code, i) &&
        (banned_engines.count(tok.text) != 0 ||
         (banned_calls.count(tok.text) != 0 && called))) {
        out.rngSites.push_back({ tok.text, tok.line, {}, true });
    }
    if (tok.text == "Xoshiro256StarStar" &&
        !memberAccessBefore(code, i)) {
        // `Xoshiro256StarStar rng(expr)` / `... rng = expr;` /
        // `Xoshiro256StarStar(expr)` — anything that actually seeds.
        std::size_t v = i + 1;
        std::size_t init_begin = 0;
        std::size_t init_end = 0;
        if (isIdent(code, v)) {
            if (isPunct(code, v + 1, '(')) {
                init_begin = v + 2;
                init_end = matchParen(code, v + 1) - 1;
            } else if (isPunct(code, v + 1, '=')) {
                init_begin = v + 2;
                init_end = init_begin;
                while (init_end < code.size() &&
                       !isPunct(code, init_end, ';')) {
                    ++init_end;
                }
            }
        } else if (isPunct(code, v, '(')) {
            init_begin = v + 1;
            init_end = matchParen(code, v) - 1;
        }
        if (init_begin != 0 && init_end > init_begin) {
            RngSite site;
            site.name = tok.text;
            site.line = tok.line;
            for (std::size_t k = init_begin; k < init_end; ++k) {
                if (isIdent(code, k))
                    site.seedIdents.push_back(code[k].text);
            }
            out.rngSites.push_back(std::move(site));
        }
    }
}

void
Indexer::run()
{
    for (std::size_t i = 0; i < code.size(); ++i) {
        const Token &tok = code[i];
        lastLine = tok.endLine > 0 ? tok.endLine : tok.line;

        if (tok.kind == TokKind::Identifier) {
            handleIdent(i);
            continue;
        }
        if (tok.kind == TokKind::String) {
            if (inFunctionNamed("allFailpoints"))
                out.catalog.push_back({ tok.text, tok.line });
            // Literal JSON object keys: `\"key\":` inside the text
            // (escape sequences are preserved verbatim by the lexer).
            const std::string &s = tok.text;
            for (std::size_t p = 0; p + 3 < s.size(); ++p) {
                if (s[p] != '\\' || s[p + 1] != '"')
                    continue;
                std::size_t q = p + 2;
                std::string key;
                while (q < s.size() &&
                       (std::isalnum(
                            static_cast<unsigned char>(s[q])) ||
                        s[q] == '_' || s[q] == '.' || s[q] == '-')) {
                    key += s[q++];
                }
                if (key.empty() || q + 1 >= s.size() ||
                    s[q] != '\\' || s[q + 1] != '"') {
                    continue;
                }
                q += 2;
                while (q < s.size() && s[q] == ' ')
                    ++q;
                if (q < s.size() && s[q] == ':') {
                    out.jsonKeys.push_back({ key, tok.line });
                    p = q - 1;
                }
            }
            continue;
        }
        if (tok.kind == TokKind::Punct && tok.text == "{") {
            classifyBrace(i);
            continue;
        }
        if (tok.kind == TokKind::Punct && tok.text == "}") {
            if (!stack.empty()) {
                Ctx ctx = std::move(stack.back());
                stack.pop_back();
                if (ctx.fnIndex != SIZE_MAX)
                    out.functions[ctx.fnIndex].bodyEnd = tok.line;
                for (std::size_t lock : ctx.locks)
                    out.lockScopes[lock].endLine = tok.line;
            }
            continue;
        }
    }
    // Unterminated scopes (macro-heavy or malformed input): close at
    // the last seen line so line-range queries stay sane.
    while (!stack.empty()) {
        Ctx ctx = std::move(stack.back());
        stack.pop_back();
        if (ctx.fnIndex != SIZE_MAX &&
            out.functions[ctx.fnIndex].bodyEnd == 0) {
            out.functions[ctx.fnIndex].bodyEnd = lastLine;
        }
        for (std::size_t lock : ctx.locks)
            out.lockScopes[lock].endLine = lastLine;
    }
}

} // anonymous namespace

std::set<std::string>
FileIndex::identifierSet() const
{
    std::set<std::string> names;
    for (const std::string &sym : symbols)
        names.insert(sym);
    return names;
}

std::uint64_t
contentHash(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : text) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

FileIndex
buildFileIndex(const std::string &path, const std::string &content)
{
    const std::vector<Token> tokens = lint::lex(content);
    std::vector<Token> code;
    code.reserve(tokens.size());

    FileIndex out;
    out.path = path;
    out.contentHash = contentHash(content);

    std::map<std::string, std::uint32_t> payload_syms;
    for (const Token &tok : tokens) {
        if (tok.kind == TokKind::Comment)
            continue;
        if (tok.kind == TokKind::Directive) {
            if (tok.text == "include") {
                if (tok.payload.size() >= 2 &&
                    tok.payload.front() == '"' &&
                    tok.payload.back() == '"') {
                    out.includes.push_back(
                        { tok.payload.substr(1, tok.payload.size() - 2),
                          tok.line });
                }
                continue;
            }
            if (tok.text == "define") {
                std::string name;
                for (char c : tok.payload) {
                    if (std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '_') {
                        name += c;
                    } else {
                        break;
                    }
                }
                if (!name.empty())
                    out.decls.push_back(
                        { name, DeclKind::Macro, tok.line });
            }
            continue;
        }
        code.push_back(tok);
    }

    Indexer indexer{ path, code, std::move(out), {}, {}, 1 };
    indexer.run();

    // Identifier-ish words of non-include directive payloads count as
    // references too: a macro used only inside `#if` must still mark
    // its defining header as used.
    for (const Token &tok : tokens) {
        if (tok.kind != TokKind::Directive || tok.text == "include")
            continue;
        std::string word;
        const std::string text = tok.payload + " ";
        for (char c : text) {
            if (std::isalnum(static_cast<unsigned char>(c)) ||
                c == '_') {
                word += c;
                continue;
            }
            if (!word.empty() && keywords().count(word) == 0 &&
                !std::isdigit(static_cast<unsigned char>(word[0]))) {
                indexer.out.refs.push_back(
                    { indexer.symbol(word), tok.line, false });
            }
            word.clear();
        }
    }

    indexer.out.waivers = lint::parseWaivers(content);
    return std::move(indexer.out);
}

void
encodeFileIndex(serial::Encoder &enc, const FileIndex &index)
{
    enc.str(index.path);
    enc.u64(index.contentHash);
    enc.u64(index.includes.size());
    for (const IncludeRef &inc : index.includes) {
        enc.str(inc.path);
        enc.u32(static_cast<std::uint32_t>(inc.line));
    }
    enc.u64(index.decls.size());
    for (const Declaration &decl : index.decls) {
        enc.str(decl.name);
        enc.u8(static_cast<std::uint8_t>(decl.kind));
        enc.u32(static_cast<std::uint32_t>(decl.line));
    }
    enc.u64(index.functions.size());
    for (const FunctionDef &fn : index.functions) {
        enc.str(fn.name);
        enc.str(fn.qualifier);
        enc.u32(static_cast<std::uint32_t>(fn.line));
        enc.u32(static_cast<std::uint32_t>(fn.bodyBegin));
        enc.u32(static_cast<std::uint32_t>(fn.bodyEnd));
        enc.u64(fn.requiresMutexes.size());
        for (const std::string &m : fn.requiresMutexes)
            enc.str(m);
    }
    enc.u64(index.symbols.size());
    for (const std::string &sym : index.symbols)
        enc.str(sym);
    enc.u64(index.refs.size());
    for (const IdentRef &ref : index.refs) {
        enc.u32(ref.sym);
        enc.u32(static_cast<std::uint32_t>(ref.line));
        enc.u8(static_cast<std::uint8_t>((ref.called ? 1 : 0) |
                                         (ref.qualified ? 2 : 0)));
    }
    enc.u64(index.syscalls.size());
    for (const SyscallSite &site : index.syscalls) {
        enc.str(site.name);
        enc.u32(static_cast<std::uint32_t>(site.line));
    }
    enc.u64(index.failpoints.size());
    for (const FailpointSite &site : index.failpoints) {
        enc.str(site.name);
        enc.u32(static_cast<std::uint32_t>(site.line));
        enc.u8(site.macroSite ? 1 : 0);
    }
    enc.u64(index.catalog.size());
    for (const CatalogEntry &entry : index.catalog) {
        enc.str(entry.name);
        enc.u32(static_cast<std::uint32_t>(entry.line));
    }
    enc.u64(index.guardedFields.size());
    for (const GuardedField &field : index.guardedFields) {
        enc.str(field.name);
        enc.str(field.klass);
        enc.str(field.mutex);
        enc.u32(static_cast<std::uint32_t>(field.line));
    }
    enc.u64(index.lockScopes.size());
    for (const LockScope &scope : index.lockScopes) {
        enc.str(scope.mutex);
        enc.u32(static_cast<std::uint32_t>(scope.beginLine));
        enc.u32(static_cast<std::uint32_t>(scope.endLine));
    }
    enc.u64(index.rngSites.size());
    for (const RngSite &site : index.rngSites) {
        enc.str(site.name);
        enc.u32(static_cast<std::uint32_t>(site.line));
        enc.u8(site.banned ? 1 : 0);
        enc.u64(site.seedIdents.size());
        for (const std::string &ident : site.seedIdents)
            enc.str(ident);
    }
    enc.u64(index.jsonKeys.size());
    for (const JsonKey &key : index.jsonKeys) {
        enc.str(key.key);
        enc.u32(static_cast<std::uint32_t>(key.line));
    }
    enc.u64(index.waivers.size());
    for (const lint::Waiver &waiver : index.waivers) {
        enc.u32(static_cast<std::uint32_t>(waiver.firstLine));
        enc.u32(static_cast<std::uint32_t>(waiver.lastLine));
        enc.u64(waiver.rules.size());
        for (const std::string &rule : waiver.rules)
            enc.str(rule);
    }
}

FileIndex
decodeFileIndex(serial::Decoder &dec)
{
    FileIndex index;
    index.path = dec.str();
    index.contentHash = dec.u64();
    for (std::uint64_t n = dec.u64(); n != 0; --n) {
        IncludeRef inc;
        inc.path = dec.str();
        inc.line = static_cast<int>(dec.u32());
        index.includes.push_back(std::move(inc));
    }
    for (std::uint64_t n = dec.u64(); n != 0; --n) {
        Declaration decl;
        decl.name = dec.str();
        decl.kind = static_cast<DeclKind>(dec.u8());
        decl.line = static_cast<int>(dec.u32());
        index.decls.push_back(std::move(decl));
    }
    for (std::uint64_t n = dec.u64(); n != 0; --n) {
        FunctionDef fn;
        fn.name = dec.str();
        fn.qualifier = dec.str();
        fn.line = static_cast<int>(dec.u32());
        fn.bodyBegin = static_cast<int>(dec.u32());
        fn.bodyEnd = static_cast<int>(dec.u32());
        for (std::uint64_t m = dec.u64(); m != 0; --m)
            fn.requiresMutexes.push_back(dec.str());
        index.functions.push_back(std::move(fn));
    }
    for (std::uint64_t n = dec.u64(); n != 0; --n)
        index.symbols.push_back(dec.str());
    for (std::uint64_t n = dec.u64(); n != 0; --n) {
        IdentRef ref;
        ref.sym = dec.u32();
        ref.line = static_cast<int>(dec.u32());
        const std::uint8_t flags = dec.u8();
        ref.called = (flags & 1) != 0;
        ref.qualified = (flags & 2) != 0;
        index.refs.push_back(ref);
    }
    for (std::uint64_t n = dec.u64(); n != 0; --n) {
        SyscallSite site;
        site.name = dec.str();
        site.line = static_cast<int>(dec.u32());
        index.syscalls.push_back(std::move(site));
    }
    for (std::uint64_t n = dec.u64(); n != 0; --n) {
        FailpointSite site;
        site.name = dec.str();
        site.line = static_cast<int>(dec.u32());
        site.macroSite = dec.u8() != 0;
        index.failpoints.push_back(std::move(site));
    }
    for (std::uint64_t n = dec.u64(); n != 0; --n) {
        CatalogEntry entry;
        entry.name = dec.str();
        entry.line = static_cast<int>(dec.u32());
        index.catalog.push_back(std::move(entry));
    }
    for (std::uint64_t n = dec.u64(); n != 0; --n) {
        GuardedField field;
        field.name = dec.str();
        field.klass = dec.str();
        field.mutex = dec.str();
        field.line = static_cast<int>(dec.u32());
        index.guardedFields.push_back(std::move(field));
    }
    for (std::uint64_t n = dec.u64(); n != 0; --n) {
        LockScope scope;
        scope.mutex = dec.str();
        scope.beginLine = static_cast<int>(dec.u32());
        scope.endLine = static_cast<int>(dec.u32());
        index.lockScopes.push_back(std::move(scope));
    }
    for (std::uint64_t n = dec.u64(); n != 0; --n) {
        RngSite site;
        site.name = dec.str();
        site.line = static_cast<int>(dec.u32());
        site.banned = dec.u8() != 0;
        for (std::uint64_t m = dec.u64(); m != 0; --m)
            site.seedIdents.push_back(dec.str());
        index.rngSites.push_back(std::move(site));
    }
    for (std::uint64_t n = dec.u64(); n != 0; --n) {
        JsonKey key;
        key.key = dec.str();
        key.line = static_cast<int>(dec.u32());
        index.jsonKeys.push_back(std::move(key));
    }
    for (std::uint64_t n = dec.u64(); n != 0; --n) {
        lint::Waiver waiver;
        waiver.firstLine = static_cast<int>(dec.u32());
        waiver.lastLine = static_cast<int>(dec.u32());
        for (std::uint64_t m = dec.u64(); m != 0; --m)
            waiver.rules.insert(dec.str());
        index.waivers.push_back(std::move(waiver));
    }
    return index;
}

} // namespace hllc::analysis
