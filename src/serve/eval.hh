/**
 * @file
 * Pure request evaluation for the serving daemon.
 *
 * Every evaluation is a deterministic function of the request bytes:
 * Replay requests capture (once, cached) the seeded Table V mix trace
 * and replay it against a fresh LLC; Batch requests wrap the inline
 * events into a trace and replay them the same way. No wall clock, no
 * shared mutable simulation state — which is what lets the daemon shard
 * requests freely while keeping per-request results byte-identical
 * across runs.
 *
 * Thread safety: evaluate() may be called concurrently from every
 * shard; only the trace cache is shared, behind a mutex.
 */

#ifndef HLLC_SERVE_EVAL_HH
#define HLLC_SERVE_EVAL_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>

#include "common/sync.hh"
#include "common/thread_annotations.hh"
#include "replay/llc_trace.hh"
#include "serve/protocol.hh"
#include "sim/config.hh"

namespace hllc::serve
{

/** Server-side evaluation bounds (violations get an error reply). */
struct EvalLimits
{
    std::uint64_t maxRefsPerCore = 100'000;
    std::uint32_t maxBatchEvents = 65'536;
    /** Distinct cached (mix, refs, seed) traces kept alive. */
    std::size_t traceCacheEntries = 16;
};

/** Resolve a wire policy name; nullopt for unknown names. */
std::optional<hybrid::PolicyKind> policyFromName(const std::string &name);

class Evaluator
{
  public:
    Evaluator(const sim::SystemConfig &config, const EvalLimits &limits);

    /**
     * Evaluate a Replay or Batch request. Throws IoError with a
     * client-presentable message on limit or argument violations (the
     * server turns it into an Error reply).
     */
    EvalResult evaluate(const Request &request);

    const EvalLimits &limits() const { return limits_; }

  private:
    using TraceKey = std::tuple<std::uint8_t, std::uint64_t,
                                std::uint64_t>;

    std::shared_ptr<const replay::LlcTrace>
    cachedTrace(std::uint8_t mix, std::uint64_t refs, std::uint64_t seed);

    EvalResult replayTrace(const replay::LlcTrace &trace,
                           const std::string &policy, std::uint8_t cpth,
                           double warmup_fraction);

    sim::SystemConfig config_;
    EvalLimits limits_;

    Mutex cacheMutex_;
    std::map<TraceKey, std::shared_ptr<const replay::LlcTrace>>
        traceCache_ HLLC_GUARDED_BY(cacheMutex_);
    /** Insertion order; the oldest entry is evicted at the bound. */
    std::deque<TraceKey> cacheOrder_ HLLC_GUARDED_BY(cacheMutex_);
};

} // namespace hllc::serve

#endif // HLLC_SERVE_EVAL_HH
