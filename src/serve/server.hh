/**
 * @file
 * hllc-serve: the sharded policy-evaluation daemon.
 *
 * Topology (one process):
 *
 *   listener thread ── accept ──▶ one reader thread per connection
 *        │                              │ parse (serve.decode)
 *        │                              ▼
 *        │                    shard = id % N  (serve.dispatch)
 *        │                              │ bounded queue; full ⇒
 *        │                              │ OVERLOADED reply, never
 *        ▼                              ▼ unbounded growth
 *   stats ticker            N shard workers on one ThreadPool
 *   (interval series)          batch-pop up to batchMax items,
 *                              evaluate, reply (serve.reply)
 *
 * Replies to one connection are serialised by a per-connection write
 * lock, so frames never interleave. The accounting invariant the drain
 * guarantee rests on: every *accepted* frame (fully read off a socket)
 * produces exactly one reply attempt — framesAccepted ==
 * repliesSent + replyFailures at all times once quiescent.
 *
 * Graceful drain (SIGTERM via common/interrupt, or requestDrain()):
 * stop accepting connections, readers stop pulling new frames (an
 * in-flight frame is finished and dispatched), shards run their queues
 * dry, every pending reply is flushed, then the final hllc-stats-v1
 * export is written through the atomic-write checkpoint path. Zero
 * accepted requests are lost.
 */

#ifndef HLLC_SERVE_SERVER_HH
#define HLLC_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hh"
#include "common/sync.hh"
#include "common/thread_annotations.hh"
#include "common/thread_pool.hh"
#include "serve/eval.hh"
#include "serve/protocol.hh"
#include "serve/socket.hh"

namespace hllc::serve
{

struct ServerConfig
{
    Endpoint endpoint;
    unsigned shards = 4;
    std::size_t queueDepth = 64;   //!< per-shard pending-request bound
    std::size_t batchMax = 16;     //!< items a shard pops per wake
    std::uint32_t maxFrameBytes = defaultMaxFrameBytes;
    EvalLimits limits;
    std::string statsOut;          //!< final hllc-stats-v1 export path
    std::uint64_t statsIntervalMs = 1000; //!< interval-series cadence
};

/** Monotonic counters (snapshot via Server::stats()). */
struct ServerStats
{
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t acceptInjectedDrops = 0; //!< serve.accept chaos
    std::uint64_t framesAccepted = 0;      //!< fully read off a socket
    std::uint64_t requestsOk = 0;
    std::uint64_t requestsError = 0;       //!< decode or eval errors
    std::uint64_t overloaded = 0;          //!< backpressure replies
    std::uint64_t repliesSent = 0;
    std::uint64_t replyFailures = 0;       //!< dead peer / serve.reply
    std::uint64_t eventsProcessed = 0;     //!< measured events evaluated
    std::uint64_t statsRequests = 0;
};

class Server
{
  public:
    explicit Server(const ServerConfig &config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, then spawn the listener, shard workers and stats ticker. */
    void start();

    /** The resolved TCP port (ephemeral binds); 0 for Unix sockets. */
    std::uint16_t tcpPort() const;

    /**
     * Block until an interrupt (SIGINT/SIGTERM via common/interrupt or
     * requestDrain()) arrives, then drain and return. The daemon main
     * is `installInterruptHandlers(); server.start(); server.serve();`.
     */
    void serve();

    /** Begin a graceful drain from another thread (idempotent). */
    void requestDrain();

    /**
     * Drain to completion: stop accepting, finish every accepted
     * request, flush replies, write the final stats export. Idempotent;
     * implied by serve() and the destructor.
     */
    void drain();

    ServerStats stats() const;

    /** The hllc-stats-v1 document (counters + interval series). */
    std::string statsJson() const;

  private:
    struct Connection;
    struct Shard;
    struct WorkItem;
    struct ReaderSlot;

    void listenerLoop();
    void readerLoop(std::shared_ptr<Connection> conn);
    void shardLoop(Shard &shard);
    void tickerLoop();
    void handleFrame(const std::shared_ptr<Connection> &conn,
                     const std::vector<std::uint8_t> &payload);
    void sendReply(const std::shared_ptr<Connection> &conn,
                   const Response &response);
    void sampleInterval();

    ServerConfig config_;
    Evaluator evaluator_;
    std::unique_ptr<Listener> listener_;

    std::atomic<bool> started_{ false };
    std::atomic<bool> draining_{ false };
    std::atomic<bool> drained_{ false };
    /** Set once the readers are gone: shards may run dry and exit. */
    std::atomic<bool> shardsMayExit_{ false };

    std::thread listenerThread_;
    std::unique_ptr<ThreadPool> shardPool_;
    std::vector<std::unique_ptr<Shard>> shards_;

    Mutex readersMutex_;
    std::vector<std::unique_ptr<ReaderSlot>> readers_
        HLLC_GUARDED_BY(readersMutex_);

    std::thread tickerThread_;
    Mutex tickerMutex_;
    CondVar tickerWake_;

    /** Counter cells are atomics so every thread can bump them. */
    struct Counters
    {
        std::atomic<std::uint64_t> connectionsAccepted{ 0 };
        std::atomic<std::uint64_t> acceptInjectedDrops{ 0 };
        std::atomic<std::uint64_t> framesAccepted{ 0 };
        std::atomic<std::uint64_t> requestsOk{ 0 };
        std::atomic<std::uint64_t> requestsError{ 0 };
        std::atomic<std::uint64_t> overloaded{ 0 };
        std::atomic<std::uint64_t> repliesSent{ 0 };
        std::atomic<std::uint64_t> replyFailures{ 0 };
        std::atomic<std::uint64_t> eventsProcessed{ 0 };
        std::atomic<std::uint64_t> statsRequests{ 0 };
    };
    Counters counters_;

    mutable Mutex seriesMutex_;
    metrics::MetricRegistry series_ HLLC_GUARDED_BY(seriesMutex_);
    std::uint64_t intervalIndex_ HLLC_GUARDED_BY(seriesMutex_) = 0;
};

} // namespace hllc::serve

#endif // HLLC_SERVE_SERVER_HH
