#include "serve/socket.hh"

#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <sys/select.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/numfmt.hh"

namespace hllc::serve
{

namespace
{

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw IoError(what + ": " + std::strerror(errno));
}

/** recv() one chunk, retrying EINTR; 0 = EOF, -1 with EAGAIN = timeout. */
ssize_t
recvChunk(int fd, void *buf, std::size_t size)
{
    for (;;) {
        const ssize_t n = ::recv(fd, buf, size, 0);
        if (n >= 0)
            return n;
        if (errno == EINTR)
            continue;
        return -1;
    }
}

} // anonymous namespace

Fd &
Fd::operator=(Fd &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Fd::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Fd::shutdown()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

Listener::Listener(const Endpoint &endpoint)
{
    if (!endpoint.unixPath.empty()) {
        unixPath_ = endpoint.unixPath;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (unixPath_.size() >= sizeof(addr.sun_path)) {
            throw IoError("unix socket path too long: " + unixPath_);
        }
        std::memcpy(addr.sun_path, unixPath_.c_str(),
                    unixPath_.size() + 1);

        Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!fd.valid())
            throwErrno("socket(AF_UNIX)");
        // A stale socket file from a previous daemon must not block the
        // restart; bind() would fail with EADDRINUSE on it.
        ::unlink(unixPath_.c_str());
        if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            throwErrno("bind('" + unixPath_ + "')");
        }
        if (::listen(fd.get(), 128) != 0)
            throwErrno("listen('" + unixPath_ + "')");
        fd_ = std::move(fd);
        return;
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(endpoint.tcpPort);

    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        throwErrno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        throwErrno("bind(127.0.0.1:" + formatU64(endpoint.tcpPort) + ")");
    }
    if (::listen(fd.get(), 128) != 0)
        throwErrno("listen(tcp)");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0) {
        throwErrno("getsockname");
    }
    port_ = ntohs(bound.sin_port);
    fd_ = std::move(fd);
}

Listener::~Listener()
{
    close();
}

std::optional<Fd>
Listener::accept(std::uint64_t timeout_ms)
{
    if (!fd_.valid())
        throw IoError("accept on a closed listener");

    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
    fd_set readable;
    FD_ZERO(&readable);
    FD_SET(fd_.get(), &readable);
    const int ready = ::select(fd_.get() + 1, &readable, nullptr,
                               nullptr, &tv);
    if (ready < 0) {
        if (errno == EINTR)
            return std::nullopt; // signal; caller re-checks its flags
        throwErrno("select(listen)");
    }
    if (ready == 0)
        return std::nullopt;

    Fd conn(::accept(fd_.get(), nullptr, nullptr));
    if (!conn.valid()) {
        // The peer can vanish between select() and accept(); that is
        // its problem, not the daemon's.
        return std::nullopt;
    }
    return conn;
}

void
Listener::close()
{
    fd_.close();
    if (!unixPath_.empty()) {
        ::unlink(unixPath_.c_str());
        unixPath_.clear();
    }
}

Fd
connectTo(const Endpoint &endpoint)
{
    if (!endpoint.unixPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (endpoint.unixPath.size() >= sizeof(addr.sun_path))
            throw IoError("unix socket path too long: " +
                          endpoint.unixPath);
        std::memcpy(addr.sun_path, endpoint.unixPath.c_str(),
                    endpoint.unixPath.size() + 1);
        Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!fd.valid())
            throwErrno("socket(AF_UNIX)");
        if (::connect(fd.get(),
                      reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            throwErrno("connect('" + endpoint.unixPath + "')");
        }
        return fd;
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(endpoint.tcpPort);
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        throwErrno("socket(AF_INET)");
    if (::connect(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        throwErrno("connect(127.0.0.1:" + formatU64(endpoint.tcpPort) +
                   ")");
    }
    return fd;
}

void
setRecvTimeoutMs(int fd, std::uint64_t timeout_ms)
{
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
    if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
        throwErrno("setsockopt(SO_RCVTIMEO)");
}

void
sendAll(int fd, const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::size_t sent = 0;
    while (sent < size) {
        const ssize_t n =
            ::send(fd, bytes + sent, size - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("send");
        }
        sent += static_cast<std::size_t>(n);
    }
}

RecvStatus
recvFrame(int fd, std::vector<std::uint8_t> &payload,
          std::uint32_t max_frame_bytes, std::uint64_t mid_frame_grace_ms)
{
    // The recv timeout set on the socket (setRecvTimeoutMs) is the unit
    // a mid-frame stall is counted in; assume 100 ms when unset.
    constexpr std::uint64_t assumedTimeoutMs = 100;

    std::uint8_t header[4];
    std::size_t got = 0;
    std::uint64_t stalled_ms = 0;
    while (got < sizeof(header)) {
        const ssize_t n =
            recvChunk(fd, header + got, sizeof(header) - got);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            if (got == 0)
                return RecvStatus::Eof;
            throw IoError("connection closed mid-frame (header)");
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (got == 0)
                return RecvStatus::Timeout;
            stalled_ms += assumedTimeoutMs;
            if (stalled_ms >= mid_frame_grace_ms)
                throw IoError("peer stalled mid-frame (header)");
            continue;
        }
        throwErrno("recv(header)");
    }

    const std::uint32_t length = static_cast<std::uint32_t>(header[0]) |
                                 static_cast<std::uint32_t>(header[1])
                                     << 8 |
                                 static_cast<std::uint32_t>(header[2])
                                     << 16 |
                                 static_cast<std::uint32_t>(header[3])
                                     << 24;
    if (length == 0)
        throw IoError("zero-length frame");
    if (length > max_frame_bytes) {
        throw IoError("frame of " + formatU64(length) +
                      " bytes exceeds the limit of " +
                      formatU64(max_frame_bytes));
    }

    payload.resize(length);
    std::size_t read = 0;
    stalled_ms = 0;
    while (read < length) {
        const ssize_t n =
            recvChunk(fd, payload.data() + read, length - read);
        if (n > 0) {
            read += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0)
            throw IoError("connection closed mid-frame (payload)");
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            stalled_ms += assumedTimeoutMs;
            if (stalled_ms >= mid_frame_grace_ms)
                throw IoError("peer stalled mid-frame (payload)");
            continue;
        }
        throwErrno("recv(payload)");
    }
    return RecvStatus::Frame;
}

} // namespace hllc::serve
