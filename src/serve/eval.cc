#include "serve/eval.hh"

#include "check/rig.hh"
#include "common/numfmt.hh"
#include "hierarchy/hierarchy.hh"
#include "replay/replayer.hh"
#include "workload/mixes.hh"

namespace hllc::serve
{

std::optional<hybrid::PolicyKind>
policyFromName(const std::string &name)
{
    using hybrid::PolicyKind;
    static const std::pair<const char *, PolicyKind> table[] = {
        { "BH", PolicyKind::Bh },           { "BH_CP", PolicyKind::BhCp },
        { "CA", PolicyKind::Ca },           { "CA_RWR", PolicyKind::CaRwr },
        { "CP_SD", PolicyKind::CpSd },      { "CP_SD_Th", PolicyKind::CpSdTh },
        { "LHybrid", PolicyKind::LHybrid }, { "TAP", PolicyKind::Tap },
        { "SRAM", PolicyKind::SramOnly },
    };
    for (const auto &[label, kind] : table) {
        if (name == label)
            return kind;
    }
    return std::nullopt;
}

Evaluator::Evaluator(const sim::SystemConfig &config,
                     const EvalLimits &limits)
    : config_(config), limits_(limits)
{
}

std::shared_ptr<const replay::LlcTrace>
Evaluator::cachedTrace(std::uint8_t mix, std::uint64_t refs,
                       std::uint64_t seed)
{
    const TraceKey key{ mix, refs, seed };
    // The mutex is held across the capture on purpose: two shards
    // racing for the same uncached trace would otherwise burn the
    // capture twice, and capture time (not lookup time) dominates.
    MutexLock lock(cacheMutex_);
    const auto it = traceCache_.find(key);
    if (it != traceCache_.end())
        return it->second;

    const workload::MixSpec &spec = workload::tableVMixes()[mix - 1];
    auto trace = std::make_shared<replay::LlcTrace>(
        hierarchy::captureTrace(spec, config_.llcBlocks(),
                                config_.privateCaches, refs, seed,
                                config_.scheme));
    if (cacheOrder_.size() >= limits_.traceCacheEntries) {
        traceCache_.erase(cacheOrder_.front());
        cacheOrder_.pop_front();
    }
    traceCache_.emplace(key, trace);
    cacheOrder_.push_back(key);
    return trace;
}

EvalResult
Evaluator::replayTrace(const replay::LlcTrace &trace,
                       const std::string &policy, std::uint8_t cpth,
                       double warmup_fraction)
{
    const auto kind = policyFromName(policy);
    if (!kind)
        throw IoError("unknown policy '" + policy + "'");

    hybrid::PolicyParams params;
    if (cpth > 0)
        params.fixedCpth = cpth;
    const hybrid::HybridLlcConfig llc_config =
        *kind == hybrid::PolicyKind::SramOnly
            ? config_.llcConfigSramBound(config_.sramWays +
                                         config_.nvmWays)
            : config_.llcConfig(*kind, params);

    // Pristine endurance fabric (capacities never bind): the serving
    // path evaluates policies, not wear trajectories, and a fresh LLC
    // per request is what makes the result a pure function of the
    // request bytes.
    check::FastRig rig = check::makeFastRig(llc_config);
    hybrid::HybridLlc &llc = *rig.llc;
    const replay::TraceReplayer replayer(warmup_fraction);
    const replay::ReplayResult replayed = replayer.replay(trace, llc);

    EvalResult result;
    result.measuredEvents = replayed.measuredEvents;
    result.demandAccesses = replayed.demandAccesses;
    result.demandHits = replayed.demandHits;
    result.nvmBytesWritten = replayed.nvmBytesWritten;
    for (const replay::CoreOutcome &core : replayed.cores)
        result.nvmWrites += core.nvmWrites;
    result.hitRate = replayed.hitRate;
    result.policyName = std::string(llc.policy().name());
    return result;
}

EvalResult
Evaluator::evaluate(const Request &request)
{
    switch (request.type) {
    case RequestType::Replay: {
        const ReplayRequest &r = request.replay;
        if (r.refsPerCore > limits_.maxRefsPerCore) {
            throw IoError("refs_per_core " + formatU64(r.refsPerCore) +
                          " exceeds the server limit of " +
                          formatU64(limits_.maxRefsPerCore));
        }
        const auto trace = cachedTrace(r.mix, r.refsPerCore, r.seed);
        return replayTrace(*trace, r.policy, r.cpth, 0.2);
    }
    case RequestType::Batch: {
        const BatchRequest &b = request.batch;
        if (b.events.size() > limits_.maxBatchEvents) {
            throw IoError("batch of " + formatU64(b.events.size()) +
                          " events exceeds the server limit of " +
                          formatU64(limits_.maxBatchEvents));
        }
        replay::LlcTrace trace;
        trace.reserve(b.events.size());
        for (const hybrid::LlcEvent &event : b.events)
            trace.append(event);
        trace.meta().mixName = "batch";
        // No warm-up: the caller sent exactly the window to measure.
        return replayTrace(trace, b.policy, b.cpth, 0.0);
    }
    case RequestType::Stats:
    case RequestType::Ping:
        break;
    }
    throw IoError("evaluate() called for a non-evaluation request");
}

} // namespace hllc::serve
