#include "serve/server.hh"

#include "common/failpoint.hh"
#include "common/interrupt.hh"
#include "common/logging.hh"

namespace hllc::serve
{

namespace
{

/** Reader poll cadence: the drain-latency bound of blocked readers. */
constexpr std::uint64_t recvPollMs = 100;
/** Shard wake cadence when idle (pushes also notify immediately). */
constexpr std::uint64_t shardPollMs = 50;

/**
 * Best-effort request id of a payload that failed full parsing, so an
 * error reply can still name the request it answers. Returns 0 when
 * even the header is unreadable.
 */
std::uint64_t
peekRequestId(const std::vector<std::uint8_t> &payload)
{
    try {
        serial::Decoder dec(payload.data(), payload.size());
        if (dec.u32() != requestMagic)
            return 0;
        if (dec.u8() != protocolVersion)
            return 0;
        dec.u8(); // type (any value; the id follows regardless)
        return dec.u64();
    } catch (const IoError &) {
        return 0;
    }
}

} // anonymous namespace

/** One accepted socket plus the lock serialising reply frames onto it. */
struct Server::Connection
{
    explicit Connection(Fd fd) : fd(std::move(fd)) {}

    Fd fd;
    Mutex writeMutex;
    /** Set on the first failed write; later replies are not attempted. */
    std::atomic<bool> dead{ false };
};

/** A parsed evaluation request waiting on a shard queue. */
struct Server::WorkItem
{
    std::shared_ptr<Connection> conn;
    Request request;
};

/** One shard: a bounded FIFO drained by one ThreadPool worker. */
struct Server::Shard
{
    explicit Shard(std::uint32_t index) : index(index) {}

    const std::uint32_t index;
    Mutex mutex;
    CondVar wake;
    std::deque<WorkItem> queue HLLC_GUARDED_BY(mutex);

    /** Enqueue unless the @p depth bound is hit. */
    bool
    tryPush(WorkItem item, std::size_t depth)
    {
        {
            MutexLock lock(mutex);
            if (queue.size() >= depth)
                return false;
            queue.push_back(std::move(item));
        }
        wake.notifyOne();
        return true;
    }

    std::size_t
    depthNow()
    {
        MutexLock lock(mutex);
        return queue.size();
    }
};

/** A reader thread and the connection it owns. */
struct Server::ReaderSlot
{
    std::thread thread;
    std::shared_ptr<Connection> conn;
    std::atomic<bool> finished{ false };
};

Server::Server(const ServerConfig &config)
    : config_(config),
      evaluator_(sim::SystemConfig::tableIV(), config.limits)
{
    if (config_.shards == 0)
        config_.shards = 1;
    if (config_.queueDepth == 0)
        config_.queueDepth = 1;
    if (config_.batchMax == 0)
        config_.batchMax = 1;
}

Server::~Server()
{
    drain();
}

void
Server::start()
{
    if (started_.exchange(true))
        throw IoError("Server::start() called twice");

    listener_ = std::make_unique<Listener>(config_.endpoint);

    shards_.reserve(config_.shards);
    for (std::uint32_t i = 0; i < config_.shards; ++i)
        shards_.push_back(std::make_unique<Shard>(i));

    // One pool worker per shard: the pool owns the threads, the shard
    // loops own the queues. drain() leans on ThreadPool::stop()'s
    // all-accepted-tasks-run guarantee.
    shardPool_ = std::make_unique<ThreadPool>(config_.shards);
    for (auto &shard : shards_) {
        Shard *raw = shard.get();
        shardPool_->submit([this, raw] { shardLoop(*raw); });
    }

    listenerThread_ = std::thread([this] { listenerLoop(); });
    tickerThread_ = std::thread([this] { tickerLoop(); });
}

std::uint16_t
Server::tcpPort() const
{
    return listener_ ? listener_->port() : 0;
}

void
Server::serve()
{
    while (!draining_.load(std::memory_order_acquire) &&
           !interruptRequested()) {
        interruptibleSleepMs(recvPollMs);
    }
    drain();
}

void
Server::requestDrain()
{
    draining_.store(true, std::memory_order_release);
}

void
Server::drain()
{
    if (!started_.load(std::memory_order_acquire) ||
        drained_.exchange(true)) {
        return;
    }
    draining_.store(true, std::memory_order_release);
    tickerWake_.notifyAll();

    // 1. No new connections.
    if (listenerThread_.joinable())
        listenerThread_.join();

    // 2. No new frames: readers observe the flag within one poll tick,
    //    finish any frame already in flight (it is accepted and must be
    //    answered), dispatch it, and exit.
    std::vector<std::unique_ptr<ReaderSlot>> readers;
    {
        MutexLock lock(readersMutex_);
        readers.swap(readers_);
    }
    for (auto &slot : readers) {
        if (slot->thread.joinable())
            slot->thread.join();
    }

    // 3. Shards run their queues dry. ThreadPool::stop() returns only
    //    after every shard loop finished, i.e. every accepted request
    //    was evaluated and its reply attempted.
    shardsMayExit_.store(true, std::memory_order_release);
    for (auto &shard : shards_)
        shard->wake.notifyAll();
    if (shardPool_)
        shardPool_->stop();

    if (tickerThread_.joinable())
        tickerThread_.join();
    sampleInterval(); // final boundary: the series end at the totals

    // 4. Final stats export through the atomic checkpoint write path.
    if (!config_.statsOut.empty()) {
        const std::string json = statsJson();
        serial::writeFileAtomic(config_.statsOut, json.data(),
                                json.size());
    }

    // Reply references are gone (shards drained): closing the
    // connections now cannot lose an accepted request.
    readers.clear();
    listener_.reset();
}

void
Server::listenerLoop()
{
    while (!draining_.load(std::memory_order_acquire)) {
        // Reap readers whose connection already ended, so a long-lived
        // daemon serving many short connections stays bounded.
        {
            MutexLock lock(readersMutex_);
            for (std::size_t i = 0; i < readers_.size();) {
                if (readers_[i]->finished.load(
                        std::memory_order_acquire)) {
                    readers_[i]->thread.join();
                    readers_.erase(
                        readers_.begin() +
                        static_cast<std::ptrdiff_t>(i));
                } else {
                    ++i;
                }
            }
        }

        std::optional<Fd> accepted;
        try {
            accepted = listener_->accept(recvPollMs);
        } catch (const IoError &e) {
            warn("hllc-serve: listener failed: %s", e.what());
            break;
        }
        if (!accepted)
            continue;
        if (failpoint::shouldFail("serve.accept")) {
            // Injected accept failure: the connection is dropped before
            // any frame could be read, so nothing is "accepted work".
            counters_.acceptInjectedDrops.fetch_add(1);
            continue;
        }

        counters_.connectionsAccepted.fetch_add(1);
        auto slot = std::make_unique<ReaderSlot>();
        slot->conn = std::make_shared<Connection>(std::move(*accepted));
        ReaderSlot *raw = slot.get();
        {
            MutexLock lock(readersMutex_);
            readers_.push_back(std::move(slot));
        }
        raw->thread = std::thread([this, raw] {
            readerLoop(raw->conn);
            raw->finished.store(true, std::memory_order_release);
        });
    }
}

void
Server::readerLoop(std::shared_ptr<Connection> conn)
{
    try {
        setRecvTimeoutMs(conn->fd.get(), recvPollMs);
    } catch (const IoError &) {
        return; // socket already dead
    }

    std::vector<std::uint8_t> payload;
    for (;;) {
        RecvStatus status;
        try {
            status = recvFrame(conn->fd.get(), payload,
                               config_.maxFrameBytes);
        } catch (const IoError &e) {
            // Framing-level damage (zero/oversized length, mid-frame
            // EOF or stall, socket error): the stream cannot be
            // resynchronised, so answer with an error frame and drop
            // the connection. The frame consumed a slot: account it so
            // accepted == replied stays checkable.
            counters_.framesAccepted.fetch_add(1);
            counters_.requestsError.fetch_add(1);
            Response response;
            response.status = Status::Error;
            response.id = 0;
            response.message = e.what();
            sendReply(conn, response);
            break;
        }
        if (status == RecvStatus::Eof)
            break;
        if (status == RecvStatus::Timeout) {
            if (draining_.load(std::memory_order_acquire))
                break;
            continue;
        }
        counters_.framesAccepted.fetch_add(1);
        handleFrame(conn, payload);
    }
}

void
Server::handleFrame(const std::shared_ptr<Connection> &conn,
                    const std::vector<std::uint8_t> &payload)
{
    Request request;
    try {
        HLLC_FAILPOINT("serve.decode");
        request = parseRequest(payload.data(), payload.size(),
                               config_.limits.maxBatchEvents);
    } catch (const IoError &e) {
        counters_.requestsError.fetch_add(1);
        Response response;
        response.status = Status::Error;
        response.id = peekRequestId(payload);
        response.message = e.what();
        sendReply(conn, response);
        return;
    }

    switch (request.type) {
    case RequestType::Ping: {
        counters_.requestsOk.fetch_add(1);
        Response response;
        response.status = Status::Ok;
        response.id = request.id;
        response.type = RequestType::Ping;
        sendReply(conn, response);
        return;
    }
    case RequestType::Stats: {
        counters_.requestsOk.fetch_add(1);
        counters_.statsRequests.fetch_add(1);
        Response response;
        response.status = Status::Ok;
        response.id = request.id;
        response.type = RequestType::Stats;
        response.statsJson = statsJson();
        sendReply(conn, response);
        return;
    }
    case RequestType::Replay:
    case RequestType::Batch:
        break;
    }

    Shard &shard = *shards_[request.id % shards_.size()];
    const bool injected = failpoint::shouldFail("serve.dispatch");
    if (injected ||
        !shard.tryPush(WorkItem{ conn, std::move(request) },
                       config_.queueDepth)) {
        counters_.overloaded.fetch_add(1);
        Response response;
        response.status = Status::Overloaded;
        response.id = peekRequestId(payload);
        response.shard = shard.index;
        response.queueDepth = config_.queueDepth;
        sendReply(conn, response);
    }
}

void
Server::shardLoop(Shard &shard)
{
    std::vector<WorkItem> batch;
    for (;;) {
        batch.clear();
        {
            MutexLock lock(shard.mutex);
            while (shard.queue.empty()) {
                if (shardsMayExit_.load(std::memory_order_acquire))
                    return;
                shard.wake.waitFor(shard.mutex, shardPollMs);
            }
            const std::size_t take =
                std::min(shard.queue.size(), config_.batchMax);
            for (std::size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(shard.queue.front()));
                shard.queue.pop_front();
            }
        }

        // The batch evaluates back to back on this worker (one lock
        // round per batchMax requests); each reply goes out as soon as
        // its evaluation finishes.
        for (WorkItem &item : batch) {
            Response response;
            response.id = item.request.id;
            response.type = item.request.type;
            try {
                response.result = evaluator_.evaluate(item.request);
                response.status = Status::Ok;
                counters_.requestsOk.fetch_add(1);
                counters_.eventsProcessed.fetch_add(
                    response.result.measuredEvents);
            } catch (const IoError &e) {
                response.status = Status::Error;
                response.message = e.what();
                counters_.requestsError.fetch_add(1);
            } catch (const std::exception &e) {
                response.status = Status::Error;
                response.message = e.what();
                counters_.requestsError.fetch_add(1);
            }
            sendReply(item.conn, response);
        }
    }
}

void
Server::sendReply(const std::shared_ptr<Connection> &conn,
                  const Response &response)
{
    const std::vector<std::uint8_t> framed =
        frame(encodeResponse(response));
    MutexLock lock(conn->writeMutex);
    if (conn->dead.load(std::memory_order_acquire)) {
        counters_.replyFailures.fetch_add(1);
        return;
    }
    try {
        if (failpoint::shouldFail("serve.reply"))
            throw IoError("injected fault at failpoint 'serve.reply'");
        sendAll(conn->fd.get(), framed.data(), framed.size());
        counters_.repliesSent.fetch_add(1);
    } catch (const IoError &) {
        // The peer is gone (or chaos says so): later replies on this
        // connection would block or fail too — mark it dead once.
        conn->dead.store(true, std::memory_order_release);
        counters_.replyFailures.fetch_add(1);
    }
}

void
Server::tickerLoop()
{
    MutexLock lock(tickerMutex_);
    while (!draining_.load(std::memory_order_acquire)) {
        tickerWake_.waitFor(tickerMutex_, config_.statsIntervalMs);
        if (draining_.load(std::memory_order_acquire))
            break;
        sampleInterval();
    }
}

void
Server::sampleInterval()
{
    std::uint64_t depth = 0;
    for (auto &shard : shards_)
        depth += shard->depthNow();

    MutexLock lock(seriesMutex_);
    series_.series("interval").append(
        static_cast<double>(intervalIndex_++));
    series_.series("requests_ok").append(
        static_cast<double>(counters_.requestsOk.load()));
    series_.series("requests_error").append(
        static_cast<double>(counters_.requestsError.load()));
    series_.series("overloaded").append(
        static_cast<double>(counters_.overloaded.load()));
    series_.series("events_processed").append(
        static_cast<double>(counters_.eventsProcessed.load()));
    series_.series("replies_sent").append(
        static_cast<double>(counters_.repliesSent.load()));
    series_.series("queue_depth").append(static_cast<double>(depth));
}

ServerStats
Server::stats() const
{
    ServerStats s;
    s.connectionsAccepted = counters_.connectionsAccepted.load();
    s.acceptInjectedDrops = counters_.acceptInjectedDrops.load();
    s.framesAccepted = counters_.framesAccepted.load();
    s.requestsOk = counters_.requestsOk.load();
    s.requestsError = counters_.requestsError.load();
    s.overloaded = counters_.overloaded.load();
    s.repliesSent = counters_.repliesSent.load();
    s.replyFailures = counters_.replyFailures.load();
    s.eventsProcessed = counters_.eventsProcessed.load();
    s.statsRequests = counters_.statsRequests.load();
    return s;
}

std::string
Server::statsJson() const
{
    const ServerStats s = stats();
    metrics::CellExport cell;
    cell.label = "serve";
    cell.counters = {
        { "connections_accepted", s.connectionsAccepted },
        { "accept_injected_drops", s.acceptInjectedDrops },
        { "frames_accepted", s.framesAccepted },
        { "requests_ok", s.requestsOk },
        { "requests_error", s.requestsError },
        { "overloaded", s.overloaded },
        { "replies_sent", s.repliesSent },
        { "reply_failures", s.replyFailures },
        { "events_processed", s.eventsProcessed },
        { "stats_requests", s.statsRequests },
    };

    MutexLock lock(seriesMutex_);
    cell.metrics = &series_;
    return metrics::statsToJson({ cell }, "hllc-serve");
}

} // namespace hllc::serve
