/**
 * @file
 * Minimal RAII POSIX socket layer for the serving daemon, its load
 * generator and the tests.
 *
 * Only what hllc-serve needs: a listener (Unix-domain path or loopback
 * TCP with ephemeral-port resolution), blocking connects, and frame
 * send/receive over the u32-length-prefix transport of
 * serve/protocol.hh. Receives run with a short kernel timeout so
 * blocked readers observe the drain flag within ~100 ms; sends use
 * MSG_NOSIGNAL so a vanished peer surfaces as IoError, never SIGPIPE.
 *
 * All failures throw hllc::IoError — library code never terminates the
 * process.
 */

#ifndef HLLC_SERVE_SOCKET_HH
#define HLLC_SERVE_SOCKET_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hh"

namespace hllc::serve
{

/** Move-only owning file descriptor. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { close(); }

    Fd(Fd &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd &operator=(Fd &&other) noexcept;
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    /** Close now (idempotent); also called by the destructor. */
    void close();
    /** Shut down both directions (wakes a peer blocked in recv). */
    void shutdown();

  private:
    int fd_ = -1;
};

/** Where a daemon listens: a Unix path, or loopback TCP. */
struct Endpoint
{
    std::string unixPath;    //!< non-empty selects AF_UNIX
    std::uint16_t tcpPort = 0; //!< AF_INET 127.0.0.1; 0 = ephemeral
};

class Listener
{
  public:
    /**
     * Bind and listen on @p endpoint. A Unix path is unlink()ed first
     * (a daemon restart must not fail on the previous socket file).
     * Throws IoError on any syscall failure.
     */
    explicit Listener(const Endpoint &endpoint);
    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /**
     * Wait up to @p timeout_ms for a connection. Returns the accepted
     * socket, or nothing on timeout. Throws IoError on a listener-level
     * failure (per-connection accept errors are swallowed: the peer
     * vanishing between poll and accept is not a daemon problem).
     */
    std::optional<Fd> accept(std::uint64_t timeout_ms);

    /** The bound TCP port (resolved when 0 was requested); 0 for Unix. */
    std::uint16_t port() const { return port_; }

    /** Stop accepting: closes the socket (and unlinks a Unix path). */
    void close();

  private:
    Fd fd_;
    std::string unixPath_;
    std::uint16_t port_ = 0;
};

/** Connect to @p endpoint (blocking). Throws IoError on failure. */
Fd connectTo(const Endpoint &endpoint);

/**
 * Set the kernel receive timeout of @p fd (recvFrame's poll cadence).
 */
void setRecvTimeoutMs(int fd, std::uint64_t timeout_ms);

/** Send all of @p data (+MSG_NOSIGNAL); throws IoError on failure. */
void sendAll(int fd, const void *data, std::size_t size);

/** Outcome of one recvFrame() call. */
enum class RecvStatus
{
    Frame,   //!< a complete payload landed in the output buffer
    Eof,     //!< clean end-of-stream at a frame boundary
    Timeout, //!< the kernel receive timeout elapsed before any byte
};

/**
 * Read one length-prefixed frame into @p payload.
 *
 * Returns Timeout only when no byte of the frame has been read yet (so
 * a poll loop can check its drain flag); once the length prefix starts
 * arriving the frame is read to completion, with up to
 * @p mid_frame_grace_ms of cumulative stall tolerated before the
 * connection is declared broken. A declared length of zero or beyond
 * @p max_frame_bytes throws IoError before any allocation, as does a
 * mid-frame EOF or socket error.
 */
RecvStatus recvFrame(int fd, std::vector<std::uint8_t> &payload,
                     std::uint32_t max_frame_bytes,
                     std::uint64_t mid_frame_grace_ms = 10'000);

} // namespace hllc::serve

#endif // HLLC_SERVE_SOCKET_HH
