#include "serve/protocol.hh"

#include "common/numfmt.hh"
#include "replay/llc_trace.hh"

namespace hllc::serve
{

namespace
{

using serial::Decoder;
using serial::Encoder;

/** Longest policy name / error message the wire accepts. */
constexpr std::size_t maxStringBytes = 4096;
/** Stats JSON replies can be larger than ordinary strings. */
constexpr std::size_t maxStatsJsonBytes = 1u << 20;

void
encodeEvent(Encoder &enc, const hybrid::LlcEvent &event)
{
    enc.u64(event.blockNum);
    enc.u8(static_cast<std::uint8_t>(event.type));
    enc.u8(event.ecbBytes);
    enc.u8(static_cast<std::uint8_t>(event.core));
}

hybrid::LlcEvent
decodeEvent(Decoder &dec)
{
    hybrid::LlcEvent event;
    event.blockNum = dec.u64();
    const std::uint8_t type = dec.u8();
    if (type > static_cast<std::uint8_t>(hybrid::LlcEventType::PutDirty))
        throw IoError("hllc-req-v1: bad event type " + formatU64(type));
    event.type = static_cast<hybrid::LlcEventType>(type);
    event.ecbBytes = dec.u8();
    // The LLC's own invariant: no encoding compresses 64 bytes below 2.
    if (event.ecbBytes < 2 || event.ecbBytes > blockBytes) {
        throw IoError("hllc-req-v1: bad ECB size " +
                      formatU64(event.ecbBytes));
    }
    const std::uint8_t core = dec.u8();
    if (core >= replay::traceCores)
        throw IoError("hllc-req-v1: bad core " + formatU64(core));
    event.core = core;
    return event;
}

void
checkHeader(Decoder &dec, std::uint32_t magic, const char *what)
{
    if (dec.u32() != magic)
        throw IoError(std::string("hllc-req-v1: bad ") + what + " magic");
    const std::uint8_t version = dec.u8();
    if (version != protocolVersion) {
        throw IoError("hllc-req-v1: unsupported version " +
                      formatU64(version));
    }
}

void
requireEnd(const Decoder &dec)
{
    if (!dec.atEnd()) {
        throw IoError("hllc-req-v1: " + formatU64(dec.remaining()) +
                      " trailing bytes");
    }
}

} // anonymous namespace

std::vector<std::uint8_t>
encodeRequest(const Request &request)
{
    Encoder enc;
    enc.u32(requestMagic);
    enc.u8(protocolVersion);
    enc.u8(static_cast<std::uint8_t>(request.type));
    enc.u64(request.id);
    switch (request.type) {
    case RequestType::Replay:
        enc.u8(request.replay.mix);
        enc.u64(request.replay.refsPerCore);
        enc.u64(request.replay.seed);
        enc.u8(request.replay.cpth);
        enc.str(request.replay.policy);
        break;
    case RequestType::Batch:
        enc.u8(request.batch.cpth);
        enc.u64(request.batch.seed);
        enc.str(request.batch.policy);
        enc.u32(static_cast<std::uint32_t>(request.batch.events.size()));
        for (const hybrid::LlcEvent &event : request.batch.events)
            encodeEvent(enc, event);
        break;
    case RequestType::Stats:
    case RequestType::Ping:
        break;
    }
    return enc.bytes();
}

Request
parseRequest(const std::uint8_t *data, std::size_t size,
             std::uint32_t max_batch_events)
{
    Decoder dec(data, size);
    checkHeader(dec, requestMagic, "request");
    const std::uint8_t raw_type = dec.u8();
    if (raw_type < static_cast<std::uint8_t>(RequestType::Replay) ||
        raw_type > static_cast<std::uint8_t>(RequestType::Ping)) {
        throw IoError("hllc-req-v1: unknown request type " +
                      formatU64(raw_type));
    }

    Request request;
    request.type = static_cast<RequestType>(raw_type);
    request.id = dec.u64();
    switch (request.type) {
    case RequestType::Replay: {
        ReplayRequest &r = request.replay;
        r.mix = dec.u8();
        if (r.mix < 1 || r.mix > 10)
            throw IoError("hllc-req-v1: mix must be in 1..10");
        r.refsPerCore = dec.u64();
        if (r.refsPerCore == 0)
            throw IoError("hllc-req-v1: refs_per_core must be >= 1");
        r.seed = dec.u64();
        r.cpth = dec.u8();
        if (r.cpth > blockBytes)
            throw IoError("hllc-req-v1: cpth must be in 0..64");
        r.policy = dec.str(maxStringBytes);
        break;
    }
    case RequestType::Batch: {
        BatchRequest &b = request.batch;
        b.cpth = dec.u8();
        if (b.cpth > blockBytes)
            throw IoError("hllc-req-v1: cpth must be in 0..64");
        b.seed = dec.u64();
        b.policy = dec.str(maxStringBytes);
        const std::uint32_t count = dec.u32();
        if (count == 0)
            throw IoError("hllc-req-v1: empty batch");
        if (count > max_batch_events) {
            throw IoError("hllc-req-v1: batch of " + formatU64(count) +
                          " events exceeds the limit of " +
                          formatU64(max_batch_events));
        }
        // 11 bytes per event on the wire: the declared count is
        // re-validated against the bytes actually present before the
        // vector grows.
        if (dec.remaining() / 11 < count) {
            throw IoError("hllc-req-v1: batch declares " +
                          formatU64(count) + " events but only " +
                          formatU64(dec.remaining()) + " bytes follow");
        }
        b.events.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i)
            b.events.push_back(decodeEvent(dec));
        break;
    }
    case RequestType::Stats:
    case RequestType::Ping:
        break;
    }
    requireEnd(dec);
    return request;
}

std::vector<std::uint8_t>
encodeResponse(const Response &response)
{
    Encoder enc;
    enc.u32(responseMagic);
    enc.u8(protocolVersion);
    enc.u8(static_cast<std::uint8_t>(response.status));
    enc.u64(response.id);
    switch (response.status) {
    case Status::Ok:
        enc.u8(static_cast<std::uint8_t>(response.type));
        if (response.type == RequestType::Replay ||
            response.type == RequestType::Batch) {
            const EvalResult &r = response.result;
            enc.u64(r.measuredEvents);
            enc.u64(r.demandAccesses);
            enc.u64(r.demandHits);
            enc.u64(r.nvmWrites);
            enc.u64(r.nvmBytesWritten);
            enc.f64(r.hitRate);
            enc.str(r.policyName);
        } else if (response.type == RequestType::Stats) {
            enc.str(response.statsJson);
        }
        break;
    case Status::Error:
        enc.str(response.message);
        break;
    case Status::Overloaded:
        enc.u32(response.shard);
        enc.u64(response.queueDepth);
        break;
    }
    return enc.bytes();
}

Response
parseResponse(const std::uint8_t *data, std::size_t size)
{
    Decoder dec(data, size);
    checkHeader(dec, responseMagic, "response");
    const std::uint8_t raw_status = dec.u8();
    if (raw_status > static_cast<std::uint8_t>(Status::Overloaded)) {
        throw IoError("hllc-req-v1: unknown status " +
                      formatU64(raw_status));
    }

    Response response;
    response.status = static_cast<Status>(raw_status);
    response.id = dec.u64();
    switch (response.status) {
    case Status::Ok: {
        const std::uint8_t raw_type = dec.u8();
        if (raw_type < static_cast<std::uint8_t>(RequestType::Replay) ||
            raw_type > static_cast<std::uint8_t>(RequestType::Ping)) {
            throw IoError("hllc-req-v1: unknown response type " +
                          formatU64(raw_type));
        }
        response.type = static_cast<RequestType>(raw_type);
        if (response.type == RequestType::Replay ||
            response.type == RequestType::Batch) {
            EvalResult &r = response.result;
            r.measuredEvents = dec.u64();
            r.demandAccesses = dec.u64();
            r.demandHits = dec.u64();
            r.nvmWrites = dec.u64();
            r.nvmBytesWritten = dec.u64();
            r.hitRate = dec.f64();
            r.policyName = dec.str(maxStringBytes);
        } else if (response.type == RequestType::Stats) {
            response.statsJson = dec.str(maxStatsJsonBytes);
        }
        break;
    }
    case Status::Error:
        response.message = dec.str(maxStringBytes);
        break;
    case Status::Overloaded:
        response.shard = dec.u32();
        response.queueDepth = dec.u64();
        break;
    }
    requireEnd(dec);
    return response;
}

std::vector<std::uint8_t>
frame(const std::vector<std::uint8_t> &payload)
{
    Encoder enc;
    enc.u32(static_cast<std::uint32_t>(payload.size()));
    enc.raw(payload.data(), payload.size());
    return enc.bytes();
}

} // namespace hllc::serve
