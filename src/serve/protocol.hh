/**
 * @file
 * The hllc-req-v1 wire protocol of the policy-evaluation daemon.
 *
 * Transport framing is a u32 little-endian payload length followed by
 * the payload bytes; the payload itself is packed with the same
 * bounds-checked Encoder/Decoder primitives the checkpoint container
 * uses (common/serialize.hh), so a truncated, over-declared or
 * bit-flipped frame is rejected with IoError — never a crash or an
 * unbounded allocation. Requests and responses carry a magic, a format
 * version and a caller-chosen request id; the id is the only ordering
 * the daemon guarantees (responses to one connection may interleave
 * across requests, each as one atomic frame).
 *
 * Request types:
 *  - Replay: capture (cached) and replay a Table V mix trace against a
 *    named insertion policy; returns the measured-window counts.
 *  - Batch: replay an inline batch of LLC events against a fresh LLC;
 *    the whole batch is the measured window.
 *  - Stats: returns the daemon's hllc-stats-v1 interval-metrics JSON.
 *  - Ping: liveness probe, empty reply.
 *
 * Every evaluation is a pure function of the request bytes (fresh LLC,
 * seeded capture, no wall-clock input), which is what makes per-request
 * results byte-identical across runs regardless of sharding or timing.
 */

#ifndef HLLC_SERVE_PROTOCOL_HH
#define HLLC_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "hybrid/types.hh"

namespace hllc::serve
{

/** Request payload magic ("HREQ"). */
inline constexpr std::uint32_t requestMagic = 0x48524551u;
/** Response payload magic ("HRSP"). */
inline constexpr std::uint32_t responseMagic = 0x48525350u;
/** Protocol version both sides must speak. */
inline constexpr std::uint8_t protocolVersion = 1;

/** Frames larger than this are rejected before any allocation. */
inline constexpr std::uint32_t defaultMaxFrameBytes = 1u << 20;

enum class RequestType : std::uint8_t
{
    Replay = 1,
    Batch = 2,
    Stats = 3,
    Ping = 4,
};

enum class Status : std::uint8_t
{
    Ok = 0,
    Error = 1,
    Overloaded = 2,
};

/** Replay body: evaluate one (mix, refs, seed) trace under a policy. */
struct ReplayRequest
{
    std::uint8_t mix = 1;          //!< Table V mix number, 1..10
    std::uint64_t refsPerCore = 0; //!< capture length (server-clamped)
    std::uint64_t seed = 0;        //!< capture seed
    std::uint8_t cpth = 0;         //!< fixed CPth 1..64; 0 = default
    std::string policy;            //!< policy name ("CP_SD", ...)
};

/** Batch body: evaluate an inline event stream under a policy. */
struct BatchRequest
{
    std::uint8_t cpth = 0;
    std::uint64_t seed = 0;        //!< echoed; reserved for future use
    std::string policy;
    std::vector<hybrid::LlcEvent> events;
};

struct Request
{
    RequestType type = RequestType::Ping;
    std::uint64_t id = 0;
    ReplayRequest replay; //!< valid when type == Replay
    BatchRequest batch;   //!< valid when type == Batch
};

/** Measured-window counts of one evaluation (Replay or Batch). */
struct EvalResult
{
    std::uint64_t measuredEvents = 0;
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandHits = 0;
    std::uint64_t nvmWrites = 0;
    std::uint64_t nvmBytesWritten = 0;
    double hitRate = 0.0;
    std::string policyName;
};

struct Response
{
    Status status = Status::Ok;
    std::uint64_t id = 0;
    RequestType type = RequestType::Ping; //!< echoed on Ok
    EvalResult result;      //!< Ok + Replay/Batch
    std::string statsJson;  //!< Ok + Stats
    std::string message;    //!< Error
    std::uint32_t shard = 0;       //!< Overloaded
    std::uint64_t queueDepth = 0;  //!< Overloaded: configured bound
};

/** Encode @p request as a payload (no frame prefix). */
std::vector<std::uint8_t> encodeRequest(const Request &request);

/**
 * Parse a request payload. @p max_batch_events bounds the declared
 * Batch event count before any allocation. Throws IoError on any
 * structural problem (bad magic/version/type, short or trailing bytes,
 * out-of-range fields).
 */
Request parseRequest(const std::uint8_t *data, std::size_t size,
                     std::uint32_t max_batch_events);

/** Encode @p response as a payload (no frame prefix). */
std::vector<std::uint8_t> encodeResponse(const Response &response);

/** Parse a response payload; throws IoError on malformed input. */
Response parseResponse(const std::uint8_t *data, std::size_t size);

/** Wrap @p payload in a u32-length-prefixed frame. */
std::vector<std::uint8_t> frame(const std::vector<std::uint8_t> &payload);

} // namespace hllc::serve

#endif // HLLC_SERVE_PROTOCOL_HH
