/**
 * @file
 * Sidecar trace manifests: a small text file written next to every
 * generated .hlt trace recording its event count, byte size and CRC32
 * (plus capture provenance: mix name and seed). Replay tools verify the
 * manifest before trusting a trace, so a truncated copy, a partial
 * download or an accidental overwrite is caught before hours of
 * simulation run against the wrong stream. A missing manifest is
 * tolerated (legacy traces); a present-but-mismatching one is an error.
 */

#ifndef HLLC_CHECK_MANIFEST_HH
#define HLLC_CHECK_MANIFEST_HH

#include <cstdint>
#include <optional>
#include <string>

#include "replay/llc_trace.hh"

namespace hllc::check
{

/** Parsed contents of one "<trace>.manifest" sidecar. */
struct TraceManifest
{
    std::uint64_t events = 0;  //!< LLC events in the trace
    std::uint64_t bytes = 0;   //!< size of the .hlt file
    /**
     * CRC32 over the file minus its trailing 4-byte container-CRC
     * word (a whole-file CRC is the fixed residue for any file that
     * ends in its own CRC32, and so detects nothing).
     */
    std::uint32_t crc32 = 0;
    std::string mix;           //!< capture mix name ("" when unknown)
    std::uint64_t seed = 0;    //!< capture seed (meaningful iff hasSeed)
    bool hasSeed = false;
};

/** Sidecar path of @p trace_path ("<trace_path>.manifest"). */
std::string manifestPathFor(const std::string &trace_path);

/**
 * Compute the manifest of the trace stored at @p trace_path (reads the
 * file for bytes/CRC32; @p trace supplies the event count and mix
 * name). Throws IoError when the file cannot be read.
 */
TraceManifest computeManifest(const std::string &trace_path,
                              const replay::LlcTrace &trace);

/** Render @p manifest to its text form. */
std::string manifestToText(const TraceManifest &manifest);

/** Parse the text form; throws IoError on malformed input. */
TraceManifest parseManifest(const std::string &text);

/** Atomically write @p manifest next to @p trace_path. */
void saveManifest(const std::string &trace_path,
                  const TraceManifest &manifest);

/**
 * Load the sidecar of @p trace_path. Returns std::nullopt when no
 * manifest exists; throws IoError when one exists but is malformed.
 */
std::optional<TraceManifest>
loadManifest(const std::string &trace_path);

/**
 * Verify @p trace_path against its sidecar: byte size and CRC32 of the
 * file on disk, then the event count of the loaded @p trace. Returns a
 * mismatch description, or std::nullopt when the manifest matches or is
 * absent.
 */
std::optional<std::string>
verifyManifest(const std::string &trace_path,
               const replay::LlcTrace &trace);

} // namespace hllc::check

#endif // HLLC_CHECK_MANIFEST_HH
