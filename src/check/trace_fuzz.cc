#include "check/trace_fuzz.hh"

#include <algorithm>
#include <chrono>
#include <iterator>

#include "check/oracle.hh"
#include "common/rng.hh"

namespace hllc::check
{

namespace
{

using hybrid::HybridLlcConfig;
using hybrid::LlcEvent;
using hybrid::LlcEventType;
using hybrid::PolicyKind;
using replay::LlcTrace;

/** ECB sizes the BDI table actually produces, plus off-by-one probes. */
constexpr unsigned kBoundaryEcbs[] = { 2,  3,  9,  16, 23, 29, 30, 31,
                                       34, 37, 38, 44, 51, 57, 58, 59,
                                       63, 64 };

LlcEventType
randomType(Xoshiro256StarStar &rng)
{
    const double p = rng.nextDouble();
    if (p < 0.40)
        return LlcEventType::GetS;
    if (p < 0.55)
        return LlcEventType::GetX;
    if (p < 0.75)
        return LlcEventType::PutClean;
    return LlcEventType::PutDirty;
}

std::uint8_t
randomEcb(Xoshiro256StarStar &rng)
{
    if (rng.nextBool(0.7)) {
        return static_cast<std::uint8_t>(
            kBoundaryEcbs[rng.nextBounded(std::size(kBoundaryEcbs))]);
    }
    return static_cast<std::uint8_t>(2 + rng.nextBounded(63));
}

LlcTrace
traceWithMeta(std::vector<LlcEvent> events, const replay::TraceMeta &meta)
{
    LlcTrace trace;
    trace.meta() = meta;
    trace.reserve(events.size());
    for (const LlcEvent &ev : events)
        trace.append(ev);
    return trace;
}

} // anonymous namespace

LlcTrace
makeTrace(std::vector<LlcEvent> events, const std::string &mix_name)
{
    replay::TraceMeta meta;
    meta.mixName = mix_name;
    return traceWithMeta(std::move(events), meta);
}

LlcTrace
generateTrace(std::uint64_t seed, std::size_t events,
              std::uint32_t num_sets)
{
    Xoshiro256StarStar rng(seed);
    // A working set a few times the cache keeps every set conflicting
    // without degenerating into an all-miss stream.
    const std::uint64_t working_set =
        static_cast<std::uint64_t>(num_sets) * 16 * 3;

    std::vector<LlcEvent> out;
    out.reserve(events);
    std::array<std::uint64_t, replay::traceCores> demands{};
    for (std::size_t i = 0; i < events; ++i) {
        LlcEvent ev{};
        ev.blockNum = rng.nextBool(0.01)
            ? rng.next()  // occasional full-width tag
            : rng.nextBounded(working_set);
        ev.type = randomType(rng);
        ev.ecbBytes = randomEcb(rng);
        ev.core = static_cast<CoreId>(rng.nextBounded(4));
        if (ev.type == LlcEventType::GetS ||
            ev.type == LlcEventType::GetX) {
            ++demands[ev.core];
        }
        out.push_back(ev);
    }

    LlcTrace trace = makeTrace(std::move(out));
    // Plausible per-core activity, so the timing model (and with it the
    // forecast loop the resume diff drives) sees real elapsed time
    // behind this stream instead of a zero-length window.
    for (std::size_t c = 0; c < replay::traceCores; ++c) {
        replay::CoreMeta &m = trace.meta().cores[c];
        m.llcDemands = demands[c];
        m.l2Hits = demands[c] * 3;
        m.l1Hits = demands[c] * 40;
        m.refs = m.l1Hits + m.l2Hits + demands[c];
        m.instructions = m.refs * 4;
    }
    return trace;
}

LlcTrace
mutateTrace(const LlcTrace &trace, std::uint64_t seed)
{
    Xoshiro256StarStar rng(seed);
    std::vector<LlcEvent> events = trace.events();
    if (events.empty())
        return traceWithMeta(std::move(events), trace.meta());

    const std::size_t edits = 1 + rng.nextBounded(8);
    for (std::size_t e = 0; e < edits; ++e) {
        const std::size_t i = rng.nextBounded(events.size());
        switch (rng.nextBounded(7)) {
          case 0: // type flip
            events[i].type = randomType(rng);
            break;
          case 1: // duplicate (Put-after-Put, Get-after-Get patterns)
            events.insert(events.begin() +
                              static_cast<std::ptrdiff_t>(
                                  rng.nextBounded(events.size() + 1)),
                          events[i]);
            break;
          case 2: // delete
            if (events.size() > 1)
                events.erase(events.begin() +
                             static_cast<std::ptrdiff_t>(i));
            break;
          case 3: { // swap (reorder a use/insert pair)
            const std::size_t j = rng.nextBounded(events.size());
            std::swap(events[i], events[j]);
            break;
          }
          case 4: // alias one block onto another (forces conflicts)
            events[i].blockNum =
                events[rng.nextBounded(events.size())].blockNum;
            break;
          case 5: // ECB boundary value
            events[i].ecbBytes = randomEcb(rng);
            break;
          default: // fold onto a hot set (32-alias mask)
            events[i].blockNum =
                (events[i].blockNum & ~Addr{31}) | rng.nextBounded(32);
            break;
        }
    }
    return traceWithMeta(std::move(events), trace.meta());
}

LlcTrace
shrinkTrace(const LlcTrace &trace, const FailPredicate &fails)
{
    std::vector<LlcEvent> current = trace.events();
    const replay::TraceMeta meta = trace.meta();

    // Classic ddmin over the event sequence: try dropping each of n
    // chunks; on success restart coarse, otherwise refine until chunks
    // are single events. Terminates 1-minimal.
    std::size_t n = 2;
    while (current.size() >= 2) {
        const std::size_t chunk = (current.size() + n - 1) / n;
        bool reduced = false;
        for (std::size_t start = 0; start < current.size();
             start += chunk) {
            std::vector<LlcEvent> candidate;
            candidate.reserve(current.size());
            candidate.insert(candidate.end(), current.begin(),
                             current.begin() +
                                 static_cast<std::ptrdiff_t>(start));
            const std::size_t stop =
                std::min(start + chunk, current.size());
            candidate.insert(candidate.end(),
                             current.begin() +
                                 static_cast<std::ptrdiff_t>(stop),
                             current.end());
            if (candidate.empty())
                continue;
            if (fails(traceWithMeta(candidate, meta))) {
                current = std::move(candidate);
                n = n > 2 ? n - 1 : 2;
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (n >= current.size())
                break;
            n = std::min(current.size(), n * 2);
        }
    }
    return traceWithMeta(std::move(current), meta);
}

FuzzReport
fuzz(const FuzzConfig &config, GoldenOptions golden)
{
    // Every policy is fair game: choosePart is shared with the golden
    // model, but each one routes through different cache mechanics
    // (global replacement, migration, dueling).
    static constexpr PolicyKind kPolicies[] = {
        PolicyKind::Bh,     PolicyKind::BhCp,    PolicyKind::Ca,
        PolicyKind::CaRwr,  PolicyKind::CpSd,    PolicyKind::CpSdTh,
        PolicyKind::LHybrid, PolicyKind::Tap,    PolicyKind::SramOnly,
    };
    static constexpr DegenerateMode kModes[] = {
        DegenerateMode::Pristine, DegenerateMode::CompressionOff,
        DegenerateMode::SramOnly,
    };

    const auto llcConfigFor = [&](PolicyKind policy) {
        HybridLlcConfig llc;
        llc.numSets = config.numSets;
        llc.sramWays = config.sramWays;
        llc.nvmWays = config.nvmWays;
        llc.policy = policy;
        llc.replacement = hybrid::ReplacementKind::Lru;
        // Short epochs so dueling actually flips CPth within a round.
        llc.epochCycles = 20'000;
        return llc;
    };

    const auto start = std::chrono::steady_clock::now();
    const auto expired = [&] {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        return elapsed.count() >= config.budgetSeconds;
    };

    FuzzReport report;
    LlcTrace previous;
    for (std::size_t iter = 0;; ++iter) {
        if (expired() ||
            (config.maxIterations != 0 && iter >= config.maxIterations)) {
            break;
        }
        report.iterations = iter + 1;

        const std::uint64_t tseed = childSeed(config.seed, iter);
        LlcTrace trace =
            (iter % 3 != 0 && previous.size() > 0)
                ? mutateTrace(previous, tseed)
                : generateTrace(tseed, config.eventsPerTrace,
                                config.numSets);
        previous = trace;

        for (PolicyKind policy : kPolicies) {
            const HybridLlcConfig llc = llcConfigFor(policy);
            for (DegenerateMode mode : kModes) {
                ++report.tracesReplayed;
                const GoldenDiffResult diff =
                    diffGolden(trace, llc, mode, golden);
                if (diff.ok())
                    continue;

                const FailPredicate still_fails =
                    [&](const LlcTrace &t) {
                        return !diffGolden(t, llc, mode, golden).ok();
                    };
                FuzzFailure failure;
                failure.originalEvents = trace.size();
                failure.reproducer = shrinkTrace(trace, still_fails);
                failure.description =
                    diffGolden(failure.reproducer, llc, mode, golden)
                        .divergence->description;
                failure.config = llc;
                failure.mode = mode;
                failure.iteration = iter;
                report.failure = std::move(failure);
                return report;
            }
            if (expired())
                break;
        }

        // Periodic cross-cutting passes: determinism and the OPT bound.
        if (!expired() && iter % 5 == 0) {
            const HybridLlcConfig llc = llcConfigFor(PolicyKind::CpSd);
            if (auto why = diffRerun(trace, llc)) {
                FuzzFailure failure;
                failure.originalEvents = trace.size();
                failure.reproducer = shrinkTrace(
                    trace, [&](const LlcTrace &t) {
                        return diffRerun(t, llc).has_value();
                    });
                failure.description = *diffRerun(failure.reproducer, llc);
                failure.config = llc;
                failure.iteration = iter;
                report.failure = std::move(failure);
                return report;
            }
        }
        if (!expired() && iter % 7 == 0) {
            const HybridLlcConfig llc = llcConfigFor(PolicyKind::CpSd);
            if (auto why = checkPolicyAgainstOracle(trace, llc)) {
                FuzzFailure failure;
                failure.originalEvents = trace.size();
                failure.reproducer = shrinkTrace(
                    trace, [&](const LlcTrace &t) {
                        return checkPolicyAgainstOracle(t, llc)
                            .has_value();
                    });
                failure.description =
                    *checkPolicyAgainstOracle(failure.reproducer, llc);
                failure.config = llc;
                failure.iteration = iter;
                report.failure = std::move(failure);
                return report;
            }
        }
    }
    return report;
}

} // namespace hllc::check
