#include "check/golden_llc.hh"

#include <sstream>

#include "common/logging.hh"
#include "compression/encoding.hh"

namespace hllc::check
{

using hybrid::AccessOutcome;
using hybrid::LlcEvent;
using hybrid::LlcEventType;
using hybrid::Part;
using hybrid::ReuseClass;

std::string
toString(const DecisionRecord &r)
{
    std::ostringstream out;
    switch (r.kind) {
      case DecisionKind::Evict:
        out << "Evict";
        break;
      case DecisionKind::Fill:
        out << "Fill";
        break;
      case DecisionKind::MigrateFree:
        out << "MigrateFree";
        break;
      case DecisionKind::Relocate:
        out << "Relocate";
        break;
      case DecisionKind::Inplace:
        out << "Inplace";
        break;
      case DecisionKind::Bypass:
        out << "Bypass";
        break;
      case DecisionKind::Outcome:
        out << "Outcome=" << r.way;
        return out.str();
    }
    out << " set=" << r.set << " way=" << r.way << " blk=0x" << std::hex
        << r.block << std::dec;
    if (r.bytes != 0)
        out << " bytes=" << r.bytes;
    if (r.flag)
        out << (r.kind == DecisionKind::Evict ? " wb" : " dirty");
    if (r.nvm)
        out << " nvm";
    return out.str();
}

std::string
toString(const std::vector<DecisionRecord> &records)
{
    std::string out;
    for (const DecisionRecord &r : records) {
        out += "  ";
        out += toString(r);
        out += '\n';
    }
    if (out.empty())
        out = "  (no decisions)\n";
    return out;
}

GoldenLlc::GoldenLlc(const hybrid::HybridLlcConfig &config,
                     GoldenOptions options)
    : config_(config), options_(options),
      policy_(hybrid::InsertionPolicy::create(config.policy,
                                              config.params)),
      sets_(config.numSets,
            std::vector<Way>(config.totalWays()))
{
    HLLC_ASSERT(config.numSets > 0 &&
                (config.numSets & (config.numSets - 1)) == 0,
                "numSets must be a power of two");
    HLLC_ASSERT(config.replacement == hybrid::ReplacementKind::Lru,
                "the golden model only covers LRU replacement");

    if (policy_->usesSetDueling()) {
        dueling_ = std::make_unique<hybrid::SetDueling>(
            config.numSets, compression::cpthCandidates(),
            config.epochCycles, policy_->thPercent(),
            policy_->twPercent());
    }
}

GoldenLlc::WayView
GoldenLlc::way(std::uint32_t set, std::uint32_t w) const
{
    const Way &l = sets_[set][w];
    return { l.blockNum, l.valid, l.dirty, l.ecbBytes };
}

unsigned
GoldenLlc::cpthForSet(std::uint32_t set) const
{
    return dueling_ ? dueling_->cpthForSet(set)
                    : config_.params.fixedCpth;
}

unsigned
GoldenLlc::storedSize(std::uint32_t w, unsigned ecb) const
{
    // SRAM always holds raw blocks; NVM holds the ECB when the policy
    // compresses, raw frames otherwise.
    if (isNvmWay(w) && policy_->usesCompression())
        return ecb;
    return static_cast<unsigned>(blockBytes);
}

ReuseClass
GoldenLlc::classOf(Addr block) const
{
    const auto it = reuse_.find(block);
    return it == reuse_.end() ? ReuseClass::None : it->second.cls;
}

unsigned
GoldenLlc::hitsOf(Addr block) const
{
    const auto it = reuse_.find(block);
    return it == reuse_.end() ? 0 : it->second.hits;
}

void
GoldenLlc::noteHit(Addr block, bool getx, bool copy_dirty)
{
    Reuse &r = reuse_[block];
    if (r.hits < 0xffff)
        ++r.hits;
    r.cls = (getx || copy_dirty) ? ReuseClass::Write : ReuseClass::Read;
}

int
GoldenLlc::findWay(std::uint32_t set, Addr block) const
{
    const std::vector<Way> &ways = sets_[set];
    for (std::uint32_t w = 0; w < ways.size(); ++w) {
        if (ways[w].valid && ways[w].blockNum == block)
            return static_cast<int>(w);
    }
    return -1;
}

int
GoldenLlc::victimWay(std::uint32_t set, std::uint32_t begin,
                     std::uint32_t end) const
{
    const std::vector<Way> &ways = sets_[set];
    // Empty ways first, lowest index (pristine frames always fit).
    for (std::uint32_t w = begin; w < end; ++w) {
        if (!ways[w].valid)
            return static_cast<int>(w);
    }
    // Then the least recently touched resident; first-scanned wins ties
    // (stamps are unique, so ties cannot actually occur).
    int lru = -1;
    int second = -1;
    for (std::uint32_t w = begin; w < end; ++w) {
        if (lru < 0 || ways[w].lastTouch < ways[lru].lastTouch) {
            second = lru;
            lru = static_cast<int>(w);
        } else if (second < 0 ||
                   ways[w].lastTouch < ways[second].lastTouch) {
            second = static_cast<int>(w);
        }
    }
    if (options_.buggyLruOffByOne && second >= 0)
        return second;
    return lru;
}

void
GoldenLlc::touch(std::uint32_t set, std::uint32_t w)
{
    sets_[set][w].lastTouch = ++clock_;
}

void
GoldenLlc::evictWay(std::uint32_t set, std::uint32_t w,
                    std::vector<DecisionRecord> *log)
{
    Way &l = sets_[set][w];
    if (!l.valid)
        return;
    if (l.dirty)
        ++writebacks_;
    if (log) {
        log->push_back({ DecisionKind::Evict, set,
                         static_cast<std::int32_t>(w), l.blockNum, l.dirty,
                         isNvmWay(w), 0 });
    }
    l.valid = false;
    l.dirty = false;
}

void
GoldenLlc::fill(std::uint32_t set, std::uint32_t w, Addr block, bool dirty,
                unsigned ecb, std::vector<DecisionRecord> *log)
{
    Way &l = sets_[set][w];
    HLLC_ASSERT(!l.valid, "golden fill over a live resident");

    const unsigned stored = storedSize(w, ecb);
    l.blockNum = block;
    l.valid = true;
    l.dirty = dirty;
    l.ecbBytes = ecb;
    touch(set, w);

    if (isNvmWay(w)) {
        nvmBytes_ += stored;
        if (dueling_)
            dueling_->recordNvmBytes(set, stored);
    }
    if (log) {
        log->push_back({ DecisionKind::Fill, set,
                         static_cast<std::int32_t>(w), block, dirty,
                         isNvmWay(w), stored });
    }
}

void
GoldenLlc::migrateToNvm(std::uint32_t set, std::uint32_t w,
                        std::vector<DecisionRecord> *log)
{
    Way &l = sets_[set][w];
    HLLC_ASSERT(l.valid && !isNvmWay(w));

    const Addr block = l.blockNum;
    const bool dirty = l.dirty;
    const unsigned ecb = l.ecbBytes;

    const int nvm_way = config_.nvmWays == 0
        ? -1
        : victimWay(set, config_.sramWays, config_.totalWays());
    if (nvm_way < 0) {
        evictWay(set, w, log);
        return;
    }

    // The block stays cached, so freeing the SRAM way is not a
    // writeback even when dirty.
    l.valid = false;
    l.dirty = false;
    if (log) {
        log->push_back({ DecisionKind::MigrateFree, set,
                         static_cast<std::int32_t>(w), block, false, false,
                         0 });
    }

    evictWay(set, static_cast<std::uint32_t>(nvm_way), log);
    fill(set, static_cast<std::uint32_t>(nvm_way), block, dirty, ecb, log);
}

void
GoldenLlc::bypass(Addr block, bool dirty, std::vector<DecisionRecord> *log)
{
    if (dirty)
        ++writebacks_;
    if (log)
        log->push_back({ DecisionKind::Bypass, 0, -1, block, dirty, false,
                         0 });
}

void
GoldenLlc::insert(Addr block, bool dirty, unsigned ecb,
                  std::vector<DecisionRecord> *log)
{
    const std::uint32_t set = setOf(block);
    const unsigned cpth = dueling_ ? dueling_->cpthForSet(set)
                                   : config_.params.fixedCpth;
    const hybrid::InsertContext ctx{
        block, dirty, ecb, classOf(block), hitsOf(block), set, cpth,
    };

    if (policy_->globalReplacement()) {
        // BH / BH_CP / SRAM bounds: one LRU over every way.
        const int w = victimWay(set, 0, config_.totalWays());
        if (w < 0) {
            bypass(block, dirty, log);
            return;
        }
        evictWay(set, static_cast<std::uint32_t>(w), log);
        fill(set, static_cast<std::uint32_t>(w), block, dirty, ecb, log);
        return;
    }

    Part part = policy_->choosePart(ctx);

    if (part == Part::Nvm) {
        const int w = config_.nvmWays == 0
            ? -1
            : victimWay(set, config_.sramWays, config_.totalWays());
        if (w >= 0) {
            evictWay(set, static_cast<std::uint32_t>(w), log);
            fill(set, static_cast<std::uint32_t>(w), block, dirty, ecb,
                 log);
            return;
        }
        // No NVM frame fits: fall back to SRAM (paper Sec. IV-B).
        part = Part::Sram;
    }

    if (config_.sramWays == 0) {
        bypass(block, dirty, log);
        return;
    }

    // SRAM insertion: an empty way if one exists.
    int w = -1;
    for (std::uint32_t i = 0; i < config_.sramWays; ++i) {
        if (!sets_[set][i].valid) {
            w = static_cast<int>(i);
            break;
        }
    }

    if (w < 0) {
        if (policy_->lhybridSramReplacement()) {
            // LHybrid: migrate the MRU loop-block to NVM to free its
            // frame; otherwise evict the plain LRU (paper Sec. II-C).
            int lb = -1;
            for (std::uint32_t i = 0; i < config_.sramWays; ++i) {
                const Way &l = sets_[set][i];
                if (l.valid && !l.dirty &&
                    classOf(l.blockNum) == ReuseClass::Read &&
                    (lb < 0 ||
                     l.lastTouch > sets_[set][lb].lastTouch)) {
                    lb = static_cast<int>(i);
                }
            }
            if (lb >= 0) {
                migrateToNvm(set, static_cast<std::uint32_t>(lb), log);
                w = lb;
            } else {
                w = victimWay(set, 0, config_.sramWays);
            }
        } else {
            w = victimWay(set, 0, config_.sramWays);
            HLLC_ASSERT(w >= 0);
            const Way &victim = sets_[set][static_cast<std::uint32_t>(w)];
            if (policy_->migrateReadReuseOnSramEviction() && victim.valid &&
                classOf(victim.blockNum) == ReuseClass::Read) {
                // CA_RWR: read-reused SRAM victims move to NVM instead
                // of leaving the LLC (paper Sec. IV-B).
                migrateToNvm(set, static_cast<std::uint32_t>(w), log);
            }
        }
    }

    HLLC_ASSERT(w >= 0);
    evictWay(set, static_cast<std::uint32_t>(w), log);
    fill(set, static_cast<std::uint32_t>(w), block, dirty, ecb, log);
}

AccessOutcome
GoldenLlc::onGetS(Addr block, std::vector<DecisionRecord> *log)
{
    (void)log;
    const std::uint32_t set = setOf(block);
    const int w = findWay(set, block);
    ++gets_;

    if (w < 0) {
        // Miss: refetched from memory, reuse history restarts.
        reuse_.erase(block);
        return AccessOutcome::Miss;
    }

    Way &l = sets_[set][static_cast<std::uint32_t>(w)];
    noteHit(block, /*getx=*/false, l.dirty);
    touch(set, static_cast<std::uint32_t>(w));
    if (dueling_)
        dueling_->recordHit(set);
    ++hits_;
    return isNvmWay(static_cast<std::uint32_t>(w)) ? AccessOutcome::HitNvm
                                                   : AccessOutcome::HitSram;
}

AccessOutcome
GoldenLlc::onGetX(Addr block, std::vector<DecisionRecord> *log)
{
    (void)log;
    const std::uint32_t set = setOf(block);
    const int w = findWay(set, block);
    ++getx_;

    if (w < 0) {
        reuse_.erase(block);
        return AccessOutcome::Miss;
    }

    Way &l = sets_[set][static_cast<std::uint32_t>(w)];
    noteHit(block, /*getx=*/true, l.dirty);
    if (dueling_)
        dueling_->recordHit(set);
    ++hits_;

    // Invalidate-on-hit: ownership moves to the private levels.
    const bool nvm = isNvmWay(static_cast<std::uint32_t>(w));
    l.valid = false;
    l.dirty = false;
    return nvm ? AccessOutcome::HitNvm : AccessOutcome::HitSram;
}

void
GoldenLlc::onPut(Addr block, bool dirty, unsigned ecb,
                 std::vector<DecisionRecord> *log)
{
    HLLC_ASSERT(ecb >= 2 && ecb <= blockBytes,
                "implausible ECB size %u", ecb);

    const std::uint32_t set = setOf(block);
    const int w = findWay(set, block);

    if (w >= 0) {
        const auto uw = static_cast<std::uint32_t>(w);
        Way &l = sets_[set][uw];
        touch(set, uw);
        if (!dirty)
            return;
        // Pristine frames always fit, so a dirty Put over a resident
        // copy is always an in-place rewrite; the fast LLC's relocate
        // path only exists for degraded frames.
        const unsigned stored = storedSize(uw, ecb);
        l.dirty = true;
        l.ecbBytes = ecb;
        if (isNvmWay(uw)) {
            nvmBytes_ += stored;
            if (dueling_)
                dueling_->recordNvmBytes(set, stored);
        }
        if (log) {
            log->push_back({ DecisionKind::Inplace, set,
                             static_cast<std::int32_t>(uw), block, true,
                             isNvmWay(uw), stored });
        }
        return;
    }

    insert(block, dirty, ecb, log);
}

AccessOutcome
GoldenLlc::handle(const LlcEvent &event, std::vector<DecisionRecord> *log)
{
    if (dueling_)
        dueling_->tick(config_.cyclesPerEvent);
    switch (event.type) {
      case LlcEventType::GetS:
        return onGetS(event.blockNum, log);
      case LlcEventType::GetX:
        return onGetX(event.blockNum, log);
      case LlcEventType::PutClean:
        onPut(event.blockNum, false, event.ecbBytes, log);
        return AccessOutcome::Miss;
      case LlcEventType::PutDirty:
        onPut(event.blockNum, true, event.ecbBytes, log);
        return AccessOutcome::Miss;
    }
    panic("unknown LLC event type");
}

} // namespace hllc::check
