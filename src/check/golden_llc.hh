/**
 * @file
 * Golden-model shadow LLC for differential validation.
 *
 * A deliberately simple reimplementation of the hybrid LLC's protocol
 * semantics (paper Sec. III/IV): per-set vectors of ways, recency as a
 * plain monotone counter per line, a std::map reuse tracker, linear
 * scans everywhere, no bit tricks, no incremental stats machinery. It
 * replays the same GetS/GetX/Put stream as HybridLlc and must produce
 * the identical decision sequence (hit/miss outcome, victim choice,
 * dirty writebacks, migrations) — any divergence is a bug in one of the
 * two implementations.
 *
 * The golden model deliberately does NOT model fault maps or SRRIP: it
 * covers the degenerate configurations the differential checker drives
 * (compression off, SRAM-only, pristine NVM frames, LRU replacement),
 * where frame-capacity constraints never bind and (Fit-)LRU collapses
 * to plain LRU. Policy steering (choosePart) and Set Dueling are pure
 * components shared with the fast LLC — they are cross-checked by their
 * own unit suites; what this model independently re-derives is every
 * piece of cache mechanics layered around them.
 */

#ifndef HLLC_CHECK_GOLDEN_LLC_HH
#define HLLC_CHECK_GOLDEN_LLC_HH

#include <map>
#include <memory>
#include <vector>

#include "check/decision.hh"
#include "hybrid/hybrid_llc.hh"
#include "hybrid/insertion_policy.hh"
#include "hybrid/set_dueling.hh"

namespace hllc::check
{

/**
 * Fault-injection knobs for mutation-testing the checker itself: a
 * deliberately wrong golden model must make the differential runner
 * report a divergence and the fuzzer shrink it to a tiny reproducer.
 * Production checks always run with every knob off.
 */
struct GoldenOptions
{
    /**
     * Victim selection picks the second-least-recently-used eligible
     * way whenever more than one candidate exists (a classic off-by-one
     * in a recency scan).
     */
    bool buggyLruOffByOne = false;
};

class GoldenLlc
{
  public:
    /**
     * @param config the same configuration handed to the fast LLC;
     *        replacement must be Lru. NVM frames are assumed pristine
     *        (the degenerate configs the golden model covers).
     */
    explicit GoldenLlc(const hybrid::HybridLlcConfig &config,
                       GoldenOptions options = {});

    /**
     * Handle one trace event, appending every structural decision to
     * @p log (when non-null) in the same order the fast LLC's probe
     * emits them.
     */
    hybrid::AccessOutcome handle(const hybrid::LlcEvent &event,
                                 std::vector<DecisionRecord> *log);

    /** @name Introspection for final-state comparison */
    ///@{
    struct WayView
    {
        Addr blockNum = 0;
        bool valid = false;
        bool dirty = false;
        unsigned ecbBytes = 0;
    };
    WayView way(std::uint32_t set, std::uint32_t w) const;
    const hybrid::HybridLlcConfig &config() const { return config_; }
    unsigned cpthForSet(std::uint32_t set) const;
    std::uint64_t demandAccesses() const { return gets_ + getx_; }
    std::uint64_t demandHits() const { return hits_; }
    std::uint64_t nvmBytesWritten() const { return nvmBytes_; }
    std::uint64_t writebacks() const { return writebacks_; }
    ///@}

  private:
    struct Way
    {
        Addr blockNum = 0;
        bool valid = false;
        bool dirty = false;
        unsigned ecbBytes = 0;
        /** Monotone recency stamp; larger = touched more recently. */
        std::uint64_t lastTouch = 0;
    };

    /** Naive reuse bookkeeping (mirrors hybrid::ReuseTracker). */
    struct Reuse
    {
        hybrid::ReuseClass cls = hybrid::ReuseClass::None;
        unsigned hits = 0;
    };

    std::uint32_t setOf(Addr block) const
    {
        return static_cast<std::uint32_t>(block) & (config_.numSets - 1);
    }
    bool isNvmWay(std::uint32_t w) const { return w >= config_.sramWays; }
    unsigned storedSize(std::uint32_t w, unsigned ecb) const;

    hybrid::ReuseClass classOf(Addr block) const;
    unsigned hitsOf(Addr block) const;
    void noteHit(Addr block, bool getx, bool copy_dirty);

    int findWay(std::uint32_t set, Addr block) const;
    /** Invalid-first then LRU victim among ways [begin, end). */
    int victimWay(std::uint32_t set, std::uint32_t begin,
                  std::uint32_t end) const;
    void touch(std::uint32_t set, std::uint32_t w);

    void evictWay(std::uint32_t set, std::uint32_t w,
                  std::vector<DecisionRecord> *log);
    void fill(std::uint32_t set, std::uint32_t w, Addr block, bool dirty,
              unsigned ecb, std::vector<DecisionRecord> *log);
    void migrateToNvm(std::uint32_t set, std::uint32_t w,
                      std::vector<DecisionRecord> *log);
    void insert(Addr block, bool dirty, unsigned ecb,
                std::vector<DecisionRecord> *log);
    void bypass(Addr block, bool dirty, std::vector<DecisionRecord> *log);

    hybrid::AccessOutcome onGetS(Addr block,
                                 std::vector<DecisionRecord> *log);
    hybrid::AccessOutcome onGetX(Addr block,
                                 std::vector<DecisionRecord> *log);
    void onPut(Addr block, bool dirty, unsigned ecb,
               std::vector<DecisionRecord> *log);

    hybrid::HybridLlcConfig config_;
    GoldenOptions options_;
    std::unique_ptr<hybrid::InsertionPolicy> policy_;
    std::unique_ptr<hybrid::SetDueling> dueling_;
    std::vector<std::vector<Way>> sets_;
    std::map<Addr, Reuse> reuse_;
    std::uint64_t clock_ = 0;

    std::uint64_t gets_ = 0;
    std::uint64_t getx_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t nvmBytes_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace hllc::check

#endif // HLLC_CHECK_GOLDEN_LLC_HH
