/**
 * @file
 * Offline Belady/OPT hit-count oracle.
 *
 * A clairvoyant replacement policy (evict the resident whose next
 * demand use is furthest in the future; bypass when the incoming block
 * is needed later than every resident) upper-bounds the demand hits any
 * online policy can score on the same trace. The oracle models the same
 * protocol as the LLC — insert on Put, hit-and-invalidate on GetX, one
 * block per way — with capacity totalWays blocks per set, which remains
 * a sound bound for compressed configurations: compression shrinks the
 * bytes a block occupies, never the one-block-per-way tag limit.
 *
 * hits(policy) <= hits(OPT) per set is the checkable consequence: any
 * violation means the simulator manufactured hits out of thin air.
 */

#ifndef HLLC_CHECK_ORACLE_HH
#define HLLC_CHECK_ORACLE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hybrid/hybrid_llc.hh"
#include "replay/llc_trace.hh"

namespace hllc::check
{

/** Demand-hit counts of one trace, per set and in total. */
struct OracleHits
{
    std::vector<std::uint64_t> perSet;
    std::uint64_t total = 0;
};

/**
 * Belady/OPT demand hits of @p trace on @p num_sets sets of
 * @p ways_per_set one-block ways (greedy furthest-next-use with
 * bypass, insert-on-Put, invalidate-on-GetX).
 */
OracleHits beladyHits(const replay::LlcTrace &trace,
                      std::uint32_t num_sets, std::uint32_t ways_per_set);

/**
 * Replay @p trace against a fresh HybridLlc of @p config (pristine NVM)
 * and check hits(policy) <= hits(OPT) for every set. Returns a
 * description of the first violating set, or std::nullopt.
 */
std::optional<std::string>
checkPolicyAgainstOracle(const replay::LlcTrace &trace,
                         const hybrid::HybridLlcConfig &config);

} // namespace hllc::check

#endif // HLLC_CHECK_ORACLE_HH
