/**
 * @file
 * Shared test-rig construction for the check subsystem: a fast
 * HybridLlc over a pristine endurance fabric (write limits far beyond
 * anything a replay can accumulate, zero variability), so frame
 * capacities never bind and the degenerate-config assumptions of the
 * golden model and oracle hold.
 */

#ifndef HLLC_CHECK_RIG_HH
#define HLLC_CHECK_RIG_HH

#include <memory>

#include "common/rng.hh"
#include "fault/endurance.hh"
#include "fault/fault_map.hh"
#include "hybrid/hybrid_llc.hh"

namespace hllc::check
{

/** A fast LLC plus the pristine endurance fabric backing its NVM part. */
struct FastRig
{
    std::unique_ptr<fault::EnduranceModel> endurance;
    std::unique_ptr<fault::FaultMap> map;
    std::unique_ptr<hybrid::HybridLlc> llc;
};

inline FastRig
makeFastRig(const hybrid::HybridLlcConfig &config)
{
    FastRig rig;
    if (config.nvmWays > 0) {
        const fault::NvmGeometry geom{ config.numSets, config.nvmWays,
                                       blockBytes };
        const auto policy =
            hybrid::InsertionPolicy::create(config.policy, config.params);
        rig.endurance = std::make_unique<fault::EnduranceModel>(
            geom, fault::EnduranceParams{ 1e15, 0.0 },
            Xoshiro256StarStar(1));
        rig.map = std::make_unique<fault::FaultMap>(*rig.endurance,
                                                    policy->granularity());
    }
    rig.llc = std::make_unique<hybrid::HybridLlc>(config, rig.map.get());
    return rig;
}

} // namespace hllc::check

#endif // HLLC_CHECK_RIG_HH
