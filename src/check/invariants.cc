#include "check/invariants.hh"

#include <map>
#include <sstream>

namespace hllc::check
{

namespace
{

using hybrid::HybridLlc;

void
violation(std::vector<std::string> &out, const std::ostringstream &what)
{
    out.push_back(what.str());
}

/** counter equality helper: "lhs (a) != rhs (b)" on mismatch. */
void
expectEqual(std::vector<std::string> &out, std::uint64_t a, std::uint64_t b,
            const char *what)
{
    if (a != b) {
        std::ostringstream s;
        s << what << ": " << a << " != " << b;
        violation(out, s);
    }
}

} // anonymous namespace

std::vector<std::string>
checkLlcStructure(const HybridLlc &llc)
{
    std::vector<std::string> out;
    const hybrid::HybridLlcConfig &cfg = llc.config();
    const bool compressed = llc.policy().usesCompression();

    for (std::uint32_t set = 0; set < cfg.numSets; ++set) {
        std::map<Addr, std::uint32_t> residents;
        for (std::uint32_t w = 0; w < cfg.totalWays(); ++w) {
            const HybridLlc::LineView l = llc.lineView(set, w);
            if (!l.valid)
                continue;

            if (llc.setOf(l.blockNum) != set) {
                std::ostringstream s;
                s << "block 0x" << std::hex << l.blockNum << std::dec
                  << " resident in set " << set << " way " << w
                  << " but maps to set " << llc.setOf(l.blockNum);
                violation(out, s);
            }
            if (l.ecbBytes < 2 || l.ecbBytes > blockBytes) {
                std::ostringstream s;
                s << "set " << set << " way " << w << ": ECB size "
                  << unsigned{l.ecbBytes} << " outside [2, 64]";
                violation(out, s);
            }
            const auto [it, fresh] = residents.emplace(l.blockNum, w);
            if (!fresh) {
                std::ostringstream s;
                s << "block 0x" << std::hex << l.blockNum << std::dec
                  << " resident twice in set " << set << " (ways "
                  << it->second << " and " << w << ")";
                violation(out, s);
            }

            if (w >= cfg.sramWays && llc.faultMap()) {
                const std::uint32_t frame =
                    set * cfg.nvmWays + (w - cfg.sramWays);
                const unsigned stored =
                    compressed ? l.ecbBytes
                               : static_cast<unsigned>(blockBytes);
                const unsigned cap = llc.faultMap()->frameCapacity(frame);
                if (cap < stored) {
                    std::ostringstream s;
                    s << "set " << set << " way " << w << ": resident needs "
                      << stored << " B but frame " << frame << " holds "
                      << cap << " B";
                    violation(out, s);
                }
            }
        }
    }
    return out;
}

std::vector<std::string>
checkStatsAccounting(const HybridLlc &llc)
{
    std::vector<std::string> out;
    const StatGroup &st = llc.stats();
    const auto c = [&](const char *name) { return st.counterValue(name); };

    expectEqual(out, c("gets"),
                c("gets_hits_sram") + c("gets_hits_nvm") + c("gets_misses"),
                "gets != hit/miss decomposition");
    expectEqual(out, c("getx"),
                c("getx_hits_sram") + c("getx_hits_nvm") + c("getx_misses"),
                "getx != hit/miss decomposition");
    expectEqual(out, c("invalidate_on_getx"),
                c("getx_hits_sram") + c("getx_hits_nvm"),
                "every GetX hit must invalidate");
    expectEqual(out, llc.demandAccesses(), c("gets") + c("getx"),
                "demandAccesses != gets + getx");
    expectEqual(out, llc.demandHits(),
                c("gets_hits_sram") + c("gets_hits_nvm") +
                    c("getx_hits_sram") + c("getx_hits_nvm"),
                "demandHits != hit counters");
    // Every insert() bumps one mix counter and ends in exactly one
    // writeLine or bypass; migrations deposit one extra block without a
    // mix entry of their own.
    expectEqual(out, c("inserts_nvm") + c("inserts_sram"),
                c("ins_none_clean") + c("ins_none_dirty") +
                    c("ins_read_clean") + c("ins_read_dirty") +
                    c("ins_write_clean") + c("ins_write_dirty") -
                    c("bypasses") + c("migrations_to_nvm"),
                "insertion mix != insert counters");

    if (c("puts_present") > c("puts_clean") + c("puts_dirty")) {
        std::ostringstream s;
        s << "puts_present (" << c("puts_present")
          << ") exceeds total Puts ("
          << c("puts_clean") + c("puts_dirty") << ")";
        violation(out, s);
    }
    if (c("nvm_writes") < c("inserts_nvm")) {
        std::ostringstream s;
        s << "nvm_writes (" << c("nvm_writes")
          << ") below inserts_nvm (" << c("inserts_nvm") << ")";
        violation(out, s);
    }
    const std::uint64_t buckets =
        c("nvm_bytes_none_clean") + c("nvm_bytes_none_dirty") +
        c("nvm_bytes_read") + c("nvm_bytes_write_reuse");
    if (buckets > c("nvm_bytes_written")) {
        std::ostringstream s;
        s << "byte-attribution buckets (" << buckets
          << " B) exceed nvm_bytes_written ("
          << c("nvm_bytes_written") << " B)";
        violation(out, s);
    }
    return out;
}

std::vector<std::string>
checkWearAccounting(const HybridLlc &llc)
{
    std::vector<std::string> out;
    const fault::FaultMap *map = llc.faultMap();
    if (!map)
        return out;

    double pending = 0.0;
    std::uint64_t live = 0;
    for (std::uint32_t f = 0; f < map->geometry().numFrames(); ++f) {
        pending += map->pendingWrites(f);
        live += map->liveBytes(f);
    }
    if (live != map->totalLiveBytes()) {
        std::ostringstream s;
        s << "fault map totalLiveBytes (" << map->totalLiveBytes()
          << ") != per-frame sum (" << live << ")";
        violation(out, s);
    }
    // Pending wear accumulates exactly (integral increments well below
    // 2^53), so un-aged wear must equal the LLC's byte counter.
    const auto bytes = llc.stats().counterValue("nvm_bytes_written");
    if (pending != static_cast<double>(bytes)) {
        std::ostringstream s;
        s << "pending fault-map wear (" << pending
          << " B) != nvm_bytes_written (" << bytes << " B)";
        violation(out, s);
    }
    return out;
}

std::vector<std::string>
checkAllInvariants(const HybridLlc &llc)
{
    std::vector<std::string> out = checkLlcStructure(llc);
    for (auto &v : checkStatsAccounting(llc))
        out.push_back(std::move(v));
    for (auto &v : checkWearAccounting(llc))
        out.push_back(std::move(v));
    return out;
}

} // namespace hllc::check
