#include "check/oracle.hh"

#include <limits>
#include <sstream>
#include <unordered_map>

#include "check/rig.hh"
#include "common/logging.hh"

namespace hllc::check
{

namespace
{

using hybrid::LlcEvent;
using hybrid::LlcEventType;

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

bool
isDemand(LlcEventType type)
{
    return type == LlcEventType::GetS || type == LlcEventType::GetX;
}

} // anonymous namespace

OracleHits
beladyHits(const replay::LlcTrace &trace, std::uint32_t num_sets,
           std::uint32_t ways_per_set)
{
    HLLC_ASSERT(num_sets > 0 && (num_sets & (num_sets - 1)) == 0,
                "num_sets must be a power of two");
    HLLC_ASSERT(ways_per_set > 0);

    const std::vector<LlcEvent> &events = trace.events();

    // Backward pass: next demand use of each event's block after it.
    std::vector<std::uint64_t> next_demand(events.size(), kNever);
    {
        std::unordered_map<Addr, std::uint64_t> next;
        for (std::size_t i = events.size(); i-- > 0;) {
            const auto it = next.find(events[i].blockNum);
            next_demand[i] = it == next.end() ? kNever : it->second;
            if (isDemand(events[i].type))
                next[events[i].blockNum] = i;
        }
    }

    // Forward pass: greedy furthest-next-use with bypass. Each resident
    // maps to the index of its next demand use (refreshed whenever an
    // event touches it, so entries never point into the past).
    OracleHits hits;
    hits.perSet.assign(num_sets, 0);
    std::vector<std::unordered_map<Addr, std::uint64_t>> sets(num_sets);

    for (std::size_t i = 0; i < events.size(); ++i) {
        const LlcEvent &ev = events[i];
        const std::uint32_t s =
            static_cast<std::uint32_t>(ev.blockNum) & (num_sets - 1);
        auto &res = sets[s];
        const auto it = res.find(ev.blockNum);

        if (isDemand(ev.type)) {
            if (it == res.end())
                continue; // miss: block bypasses the LLC on refill
            ++hits.perSet[s];
            ++hits.total;
            if (ev.type == LlcEventType::GetX)
                res.erase(it); // invalidate-on-hit
            else
                it->second = next_demand[i];
            continue;
        }

        // Put: refresh a resident copy, or insert with OPT replacement.
        if (it != res.end()) {
            it->second = next_demand[i];
            continue;
        }
        if (res.size() < ways_per_set) {
            res.emplace(ev.blockNum, next_demand[i]);
            continue;
        }
        auto victim = res.begin();
        for (auto r = res.begin(); r != res.end(); ++r) {
            if (r->second > victim->second ||
                (r->second == victim->second && r->first < victim->first)) {
                victim = r;
            }
        }
        if (next_demand[i] >= victim->second)
            continue; // incoming is the furthest (or never) used: bypass
        res.erase(victim);
        res.emplace(ev.blockNum, next_demand[i]);
    }

    return hits;
}

std::optional<std::string>
checkPolicyAgainstOracle(const replay::LlcTrace &trace,
                         const hybrid::HybridLlcConfig &config)
{
    const OracleHits oracle =
        beladyHits(trace, config.numSets, config.totalWays());

    FastRig rig = makeFastRig(config);
    std::vector<std::uint64_t> policy_hits(config.numSets, 0);
    for (const LlcEvent &ev : trace.events()) {
        const hybrid::AccessOutcome outcome = rig.llc->handle(ev);
        if (isDemand(ev.type) && outcome != hybrid::AccessOutcome::Miss)
            ++policy_hits[rig.llc->setOf(ev.blockNum)];
    }

    for (std::uint32_t s = 0; s < config.numSets; ++s) {
        if (policy_hits[s] > oracle.perSet[s]) {
            std::ostringstream out;
            out << "set " << s << ": policy "
                << std::string(rig.llc->policy().name()) << " scored "
                << policy_hits[s] << " hits, Belady/OPT bound is "
                << oracle.perSet[s];
            return out.str();
        }
    }
    return std::nullopt;
}

} // namespace hllc::check
