/**
 * @file
 * Structural and accounting invariants of a live HybridLlc.
 *
 * Each checker walks the LLC's introspection surface (LineView, stats
 * counters, fault map) and returns every violated invariant as a
 * human-readable message — an empty vector means the instance is
 * consistent. Property tests call these after driving random streams;
 * the differential runner calls them on both sides before comparing
 * decision streams, so a corrupted tag store is reported as itself
 * rather than as a mysterious divergence later.
 */

#ifndef HLLC_CHECK_INVARIANTS_HH
#define HLLC_CHECK_INVARIANTS_HH

#include <string>
#include <vector>

#include "hybrid/hybrid_llc.hh"

namespace hllc::check
{

/**
 * Tag-store structure: each valid line's block maps to the set holding
 * it, no block is resident twice in a set, ECB sizes are in [2, 64],
 * and every valid NVM resident still fits its frame's live capacity.
 */
std::vector<std::string>
checkLlcStructure(const hybrid::HybridLlc &llc);

/**
 * Counter identities that hold after any event stream: hit/miss
 * decompositions sum to the request counts, every GetX hit invalidated
 * a line, byte-attribution buckets sum to the insertion byte traffic,
 * and derived stats (demandHits/demandAccesses/hitRate) agree with the
 * raw counters.
 */
std::vector<std::string>
checkStatsAccounting(const hybrid::HybridLlc &llc);

/**
 * Wear accounting: pending byte-writes recorded in the fault map equal
 * the LLC's nvm_bytes_written counter. Only valid while no age() or
 * discardPending() call has consumed the pending wear and the LLC's
 * stats have not been reset mid-stream — property tests and the
 * differential runner satisfy both.
 */
std::vector<std::string>
checkWearAccounting(const hybrid::HybridLlc &llc);

/** Run every checker above and concatenate the violations. */
std::vector<std::string>
checkAllInvariants(const hybrid::HybridLlc &llc);

} // namespace hllc::check

#endif // HLLC_CHECK_INVARIANTS_HH
