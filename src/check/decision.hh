/**
 * @file
 * The observable decision vocabulary two LLC implementations are
 * compared over.
 *
 * A differential run records, for every trace event, the sequence of
 * structural decisions the implementation took (evictions, fills,
 * migrations, in-place updates, bypasses) plus the access outcome. Two
 * implementations agree on an event iff their record sequences are
 * identical — way indices included, since both sides are required to
 * scan ways in ascending order and break LRU ties identically.
 */

#ifndef HLLC_CHECK_DECISION_HH
#define HLLC_CHECK_DECISION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hybrid/hybrid_llc.hh"
#include "hybrid/types.hh"

namespace hllc::check
{

/** What one decision record describes. */
enum class DecisionKind : std::uint8_t
{
    Evict,        //!< resident left the LLC (flag = dirty writeback)
    Fill,         //!< block deposited into (set, way); flag = dirty
    MigrateFree,  //!< SRAM way freed for a migration (block stays)
    Relocate,     //!< resident outgrew its frame on a dirty Put
    Inplace,      //!< dirty Put rewrote the resident copy in place
    Bypass,       //!< insertion bypassed the LLC (flag = dirty)
    Outcome       //!< access outcome of the event (way = outcome value)
};

/** One structural decision taken while handling one trace event. */
struct DecisionRecord
{
    DecisionKind kind;
    std::uint32_t set = 0;
    std::int32_t way = -1;
    Addr block = 0;
    bool flag = false;   //!< dirty / writeback, per kind
    bool nvm = false;
    unsigned bytes = 0;  //!< stored size where applicable

    bool operator==(const DecisionRecord &) const = default;
};

/** Human-readable rendering, e.g. "Evict set=3 way=5 blk=0x2a wb nvm". */
std::string toString(const DecisionRecord &record);

/** Render a whole per-event sequence, one record per line. */
std::string toString(const std::vector<DecisionRecord> &records);

/**
 * LlcProbe that appends every decision of the instrumented HybridLlc to
 * a caller-owned vector; the differential runner clears it per event.
 */
class RecordingProbe : public hybrid::LlcProbe
{
  public:
    explicit RecordingProbe(std::vector<DecisionRecord> &out) : out_(out) {}

    void
    onEvict(std::uint32_t set, std::uint32_t way, Addr block,
            bool writeback, bool nvm) override
    {
        out_.push_back({ DecisionKind::Evict, set,
                         static_cast<std::int32_t>(way), block, writeback,
                         nvm, 0 });
    }
    void
    onFill(std::uint32_t set, std::uint32_t way, Addr block, bool dirty,
           unsigned stored, bool nvm) override
    {
        out_.push_back({ DecisionKind::Fill, set,
                         static_cast<std::int32_t>(way), block, dirty, nvm,
                         stored });
    }
    void
    onMigrateFree(std::uint32_t set, std::uint32_t way, Addr block) override
    {
        out_.push_back({ DecisionKind::MigrateFree, set,
                         static_cast<std::int32_t>(way), block, false,
                         false, 0 });
    }
    void
    onRelocate(std::uint32_t set, std::uint32_t way, Addr block) override
    {
        out_.push_back({ DecisionKind::Relocate, set,
                         static_cast<std::int32_t>(way), block, false,
                         false, 0 });
    }
    void
    onInplaceUpdate(std::uint32_t set, std::uint32_t way, Addr block,
                    unsigned stored, bool nvm) override
    {
        out_.push_back({ DecisionKind::Inplace, set,
                         static_cast<std::int32_t>(way), block, true, nvm,
                         stored });
    }
    void
    onBypass(Addr block, bool dirty) override
    {
        out_.push_back({ DecisionKind::Bypass, 0, -1, block, dirty, false,
                         0 });
    }

  private:
    std::vector<DecisionRecord> &out_;
};

/** Append the access-outcome record the runner adds after dispatch. */
inline void
appendOutcome(std::vector<DecisionRecord> &records,
              hybrid::AccessOutcome outcome)
{
    records.push_back({ DecisionKind::Outcome, 0,
                        static_cast<std::int32_t>(outcome), 0, false, false,
                        0 });
}

} // namespace hllc::check

#endif // HLLC_CHECK_DECISION_HH
