/**
 * @file
 * Differential replay: drive two configurations of the simulator over
 * the same trace and report the first event where they disagree.
 *
 * Four modes, one per class of bug:
 *  - golden: fast HybridLlc vs. the GoldenLlc shadow model under a
 *    degenerate configuration (logic bugs in the cache mechanics);
 *  - rerun: the same configuration replayed twice (non-determinism:
 *    uninitialised state, iteration-order dependence);
 *  - jobs: a replay grid at jobs=1 vs. jobs=N (parallelism bugs);
 *  - resume: a forecast run straight through vs. checkpointed, stopped
 *    and resumed (checkpoint completeness bugs).
 */

#ifndef HLLC_CHECK_DIFFERENTIAL_HH
#define HLLC_CHECK_DIFFERENTIAL_HH

#include <optional>
#include <string>
#include <vector>

#include "check/golden_llc.hh"
#include "replay/llc_trace.hh"

namespace hllc::check
{

/**
 * The degenerate configurations the golden model covers (pristine NVM
 * always; see golden_llc.hh).
 */
enum class DegenerateMode
{
    Pristine,        //!< config as given, fresh fault map
    CompressionOff,  //!< every event's ECB forced to 64 B
    SramOnly         //!< all ways SRAM (nvmWays folded into sramWays)
};

std::string_view degenerateModeName(DegenerateMode mode);

/** First point where the two sides of a differential run disagreed. */
struct Divergence
{
    /** Index of the offending event; trace size for end-state checks. */
    std::size_t eventIndex = 0;
    /** The event being handled when the streams split. */
    hybrid::LlcEvent event{};
    /** Full context: set, CPth in force, both decision sequences. */
    std::string description;
};

/** Outcome of one golden-model differential replay. */
struct GoldenDiffResult
{
    std::optional<Divergence> divergence;
    std::uint64_t eventsCompared = 0;

    bool ok() const { return !divergence.has_value(); }
};

/** Apply @p mode to a configuration (SramOnly geometry fold). */
hybrid::HybridLlcConfig
degenerateConfig(hybrid::HybridLlcConfig config, DegenerateMode mode);

/** Apply @p mode to one event (CompressionOff ECB flattening). */
hybrid::LlcEvent
degenerateEvent(hybrid::LlcEvent event, DegenerateMode mode);

/**
 * Replay @p trace against a fresh HybridLlc (pristine fault map) and a
 * GoldenLlc under @p mode, comparing per-event decision streams, access
 * outcomes, and the final tag stores and aggregate counters. @p golden
 * carries the deliberate-bug knobs for mutation-testing the checker.
 */
GoldenDiffResult
diffGolden(const replay::LlcTrace &trace, hybrid::HybridLlcConfig config,
           DegenerateMode mode, GoldenOptions golden = {});

/**
 * Replay @p trace twice against two independently constructed LLCs of
 * the same configuration; any decision-stream or end-state difference
 * is returned as a description (std::nullopt = deterministic).
 */
std::optional<std::string>
diffRerun(const replay::LlcTrace &trace,
          const hybrid::HybridLlcConfig &config);

/**
 * Run a replay grid over @p configs at jobs=1 and jobs=@p jobs and
 * compare the per-cell summaries, which the grid contract requires to
 * be identical for any worker count.
 */
std::optional<std::string>
diffJobs(const replay::LlcTrace &trace,
         const std::vector<hybrid::HybridLlcConfig> &configs,
         unsigned jobs);

/**
 * Run a short ForecastEngine loop straight through, then again stopped
 * at the first step boundary and resumed from its checkpoint (written
 * under @p checkpoint_dir), and compare the two time series point by
 * point. The resumed series must be identical to the uninterrupted one.
 */
std::optional<std::string>
diffResume(const replay::LlcTrace &trace,
           const hybrid::HybridLlcConfig &config,
           const std::string &checkpoint_dir);

} // namespace hllc::check

#endif // HLLC_CHECK_DIFFERENTIAL_HH
