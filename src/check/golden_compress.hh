/**
 * @file
 * Brute-force reference decompressor and round-trip verifiers.
 *
 * The production BDI codec (compression/bdi.cc) is written for speed and
 * shares helpers between encode and decode, so a bug in a shared helper
 * can cancel out in a naive `decode(encode(x)) == x` test. The reference
 * decoder here rebuilds blocks byte by byte from the ECB image with
 * nothing but long-hand little-endian arithmetic — no memcpy, no shared
 * code with the codec under test. Round-trip checks therefore catch
 * errors on either side of the production pair.
 *
 * For FPC and C-Pack the bitstream layout is scheme-internal, so the
 * verifier checks the codec against its own decompressor plus the size
 * accounting contract (image size == ecbSize(), within [2, 64]).
 */

#ifndef HLLC_CHECK_GOLDEN_COMPRESS_HH
#define HLLC_CHECK_GOLDEN_COMPRESS_HH

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hh"
#include "compression/bdi.hh"
#include "compression/compressor.hh"

namespace hllc::check
{

/**
 * Independent reimplementation of BDI decoding: rebuild the 64-byte
 * block from an ECB image, byte by byte. Returns std::nullopt (with a
 * message in @p why when non-null) if the image is structurally invalid
 * for @p ce (wrong size, wrong header byte).
 */
std::optional<BlockData>
referenceBdiDecode(compression::Ce ce, std::span<const std::uint8_t> ecb,
                   std::string *why = nullptr);

/**
 * Verify every BDI invariant for one block: each applicable encoding
 * round-trips through the reference decoder with exact size accounting,
 * compress() picks the smallest applicable encoding, and Uncompressed
 * always round-trips. Returns a failure description, or std::nullopt.
 */
std::optional<std::string> verifyBdiBlock(const BlockData &data);

/**
 * Verify one block through a generic compressor: the stored image's size
 * matches ecbSize() and stays within [2, 64], and decompress() restores
 * the block exactly. Returns a failure description, or std::nullopt.
 */
std::optional<std::string>
verifyCompressorBlock(const compression::BlockCompressor &compressor,
                      const BlockData &data);

/** A named boundary-payload block for exhaustive round-trip sweeps. */
struct NamedBlock
{
    std::string name;
    BlockData data;
};

/**
 * Boundary payloads exercising every encoding's edges: all-zero,
 * all-0xFF, repeated values, per-encoding maximum deltas, deltas one
 * past the representable bound, and segments one byte short of a value
 * boundary.
 */
std::vector<NamedBlock> boundaryBlocks();

} // namespace hllc::check

#endif // HLLC_CHECK_GOLDEN_COMPRESS_HH
