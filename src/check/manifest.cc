#include "check/manifest.hh"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "common/error.hh"
#include "common/serialize.hh"

namespace hllc::check
{

namespace
{

constexpr const char *kHeader = "hllc-trace-manifest-v1";

[[noreturn]] void
malformed(const std::string &what)
{
    throw IoError("malformed trace manifest: " + what);
}

/**
 * CRC32 of the trace's content, i.e. the file minus its trailing
 * 4-byte container-CRC word. A CRC over the *whole* file would be the
 * fixed CRC residue (0x2144df1c) for every well-formed container —
 * appending a message's own CRC32 collapses the checksum to a
 * length-independent constant — and would therefore detect nothing.
 */
std::uint32_t
contentCrc(const std::vector<std::uint8_t> &bytes)
{
    const std::size_t n = bytes.size() >= 4 ? bytes.size() - 4 : 0;
    return serial::crc32(bytes.data(), n);
}

std::uint64_t
parseU64Field(const std::string &value, const std::string &key)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 0);
    if (errno != 0 || end == value.c_str() || *end != '\0')
        malformed("bad value '" + value + "' for " + key);
    return v;
}

} // anonymous namespace

std::string
manifestPathFor(const std::string &trace_path)
{
    return trace_path + ".manifest";
}

TraceManifest
computeManifest(const std::string &trace_path,
                const replay::LlcTrace &trace)
{
    const std::vector<std::uint8_t> bytes =
        serial::readFileBytes(trace_path);
    TraceManifest m;
    m.events = trace.size();
    m.bytes = bytes.size();
    m.crc32 = contentCrc(bytes);
    m.mix = trace.meta().mixName;
    return m;
}

std::string
manifestToText(const TraceManifest &manifest)
{
    std::ostringstream out;
    out << kHeader << "\n"
        << "events " << manifest.events << "\n"
        << "bytes " << manifest.bytes << "\n"
        << "crc32 0x" << std::hex << manifest.crc32 << std::dec << "\n";
    if (!manifest.mix.empty())
        out << "mix " << manifest.mix << "\n";
    if (manifest.hasSeed)
        out << "seed " << manifest.seed << "\n";
    return out.str();
}

TraceManifest
parseManifest(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != kHeader)
        malformed("missing '" + std::string(kHeader) + "' header");

    TraceManifest m;
    bool saw_events = false, saw_bytes = false, saw_crc = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const std::size_t space = line.find(' ');
        if (space == std::string::npos)
            malformed("line without a value: '" + line + "'");
        const std::string key = line.substr(0, space);
        const std::string value = line.substr(space + 1);
        if (key == "events") {
            m.events = parseU64Field(value, key);
            saw_events = true;
        } else if (key == "bytes") {
            m.bytes = parseU64Field(value, key);
            saw_bytes = true;
        } else if (key == "crc32") {
            m.crc32 =
                static_cast<std::uint32_t>(parseU64Field(value, key));
            saw_crc = true;
        } else if (key == "mix") {
            m.mix = value;
        } else if (key == "seed") {
            m.seed = parseU64Field(value, key);
            m.hasSeed = true;
        }
        // Unknown keys are ignored: future fields stay backward-readable.
    }
    if (!saw_events || !saw_bytes || !saw_crc)
        malformed("events/bytes/crc32 fields are required");
    return m;
}

void
saveManifest(const std::string &trace_path, const TraceManifest &manifest)
{
    const std::string text = manifestToText(manifest);
    serial::writeFileAtomic(manifestPathFor(trace_path), text.data(),
                            text.size());
}

std::optional<TraceManifest>
loadManifest(const std::string &trace_path)
{
    std::vector<std::uint8_t> bytes;
    try {
        bytes = serial::readFileBytes(manifestPathFor(trace_path));
    } catch (const IoError &) {
        return std::nullopt; // no sidecar: legacy trace
    }
    return parseManifest(
        std::string(reinterpret_cast<const char *>(bytes.data()),
                    bytes.size()));
}

std::optional<std::string>
verifyManifest(const std::string &trace_path,
               const replay::LlcTrace &trace)
{
    const std::optional<TraceManifest> manifest = loadManifest(trace_path);
    if (!manifest)
        return std::nullopt;

    const std::vector<std::uint8_t> bytes =
        serial::readFileBytes(trace_path);
    std::ostringstream out;
    if (manifest->bytes != bytes.size()) {
        out << trace_path << ": manifest declares " << manifest->bytes
            << " B but the file holds " << bytes.size() << " B";
        return out.str();
    }
    const std::uint32_t crc = contentCrc(bytes);
    if (manifest->crc32 != crc) {
        out << trace_path << ": manifest CRC32 0x" << std::hex
            << manifest->crc32 << " != file CRC32 0x" << crc << std::dec;
        return out.str();
    }
    if (manifest->events != trace.size()) {
        out << trace_path << ": manifest declares " << manifest->events
            << " events but the trace holds " << trace.size();
        return out.str();
    }
    return std::nullopt;
}

} // namespace hllc::check
