/**
 * @file
 * Byte-level corpus enumeration for decoder fuzzing.
 *
 * The structure-aware trace fuzzer (trace_fuzz.hh) mutates *valid*
 * event streams to hunt policy divergences; these helpers attack the
 * other side of the trust boundary: the raw byte streams an ingest
 * decoder is handed. They enumerate exhaustive truncation and
 * byte-corruption corpora over a seed input so a test can assert the
 * decoder's contract — every mutant is either cleanly rejected with a
 * typed error or decodes to a valid result, and never crashes, hangs,
 * or leaves partial output behind.
 */

#ifndef HLLC_CHECK_BYTEFUZZ_HH
#define HLLC_CHECK_BYTEFUZZ_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hllc::check
{

/**
 * Invoke @p fn on every strict prefix of @p bytes (lengths 0 through
 * size-1): the exhaustive truncation corpus. @p fn receives the mutant
 * bytes and the truncated length.
 */
template <typename Fn>
void
forEachTruncation(const std::vector<std::uint8_t> &bytes, const Fn &fn)
{
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        std::vector<std::uint8_t> mutant(bytes.begin(),
                                         bytes.begin() +
                                             static_cast<std::ptrdiff_t>(
                                                 len));
        fn(mutant, len);
    }
}

/**
 * The XOR masks of the byte-flip corpus: full inversion plus the two
 * single-bit edges (low bit, high bit). One byte at a time, these hit
 * value-field corruption, off-by-one enum escapes, and sign/top-bit
 * confusion without the cost of the full position × 255 product.
 */
inline const std::vector<std::uint8_t> &
byteFlipMasks()
{
    static const std::vector<std::uint8_t> masks = { 0xff, 0x01, 0x80 };
    return masks;
}

/**
 * Invoke @p fn on every single-byte corruption of @p bytes: for each
 * position and each mask in @p masks, the input with that one byte
 * XOR-ed. @p fn receives the mutant bytes, the corrupted position, and
 * the mask applied.
 */
template <typename Fn>
void
forEachByteFlip(const std::vector<std::uint8_t> &bytes,
                const std::vector<std::uint8_t> &masks, const Fn &fn)
{
    std::vector<std::uint8_t> mutant = bytes;
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
        for (const std::uint8_t mask : masks) {
            if (mask == 0)
                continue;
            mutant[pos] = static_cast<std::uint8_t>(bytes[pos] ^ mask);
            fn(mutant, pos, mask);
            mutant[pos] = bytes[pos];
        }
    }
}

} // namespace hllc::check

#endif // HLLC_CHECK_BYTEFUZZ_HH
