#include "check/golden_compress.hh"

#include <sstream>

#include "compression/encoding.hh"

namespace hllc::check
{

using compression::BdiCompressor;
using compression::Ce;
using compression::CeInfo;
using compression::ceInfo;
using compression::ceTable;

namespace
{

std::optional<BlockData>
fail(std::string *why, const std::string &message)
{
    if (why)
        *why = message;
    return std::nullopt;
}

/** Write the low @p k bytes of @p v little-endian at byte offset @p at. */
void
putLe(BlockData &data, std::size_t at, std::uint64_t v, unsigned k)
{
    for (unsigned b = 0; b < k; ++b)
        data[at + b] = static_cast<std::uint8_t>(v >> (8 * b));
}

} // anonymous namespace

std::optional<BlockData>
referenceBdiDecode(Ce ce, std::span<const std::uint8_t> ecb,
                   std::string *why)
{
    const CeInfo &info = ceInfo(ce);
    if (ecb.size() != info.ecbBytes) {
        std::ostringstream out;
        out << "ECB image is " << ecb.size() << " B, " << info.name
            << " requires " << info.ecbBytes << " B";
        return fail(why, out.str());
    }

    BlockData data{};

    if (ce == Ce::Uncompressed) {
        for (std::size_t i = 0; i < blockBytes; ++i)
            data[i] = ecb[i];
        return data;
    }

    if (ecb[0] != static_cast<std::uint8_t>(ce))
        return fail(why, "CE header byte does not name the encoding");

    if (ce == Ce::Zeros)
        return data;

    if (ce == Ce::Rep8) {
        for (std::size_t i = 0; i < blockBytes; ++i)
            data[i] = ecb[1 + i % 8];
        return data;
    }

    // Base-delta: value 0 is the stored base verbatim; value i >= 1 is
    // base + delta_i mod 2^(8k), computed here as long-hand bytewise
    // addition of the sign-extended delta — nothing shared with the
    // production decoder's 64-bit arithmetic.
    const unsigned k = info.baseBytes;
    const unsigned d = info.deltaBytes;
    const std::uint8_t *base = ecb.data() + 1;
    for (unsigned b = 0; b < k; ++b)
        data[b] = base[b];

    std::size_t off = 1 + k;
    for (unsigned i = 1; i < blockBytes / k; ++i, off += d) {
        const std::uint8_t ext =
            (ecb[off + d - 1] & 0x80) ? 0xff : 0x00;
        unsigned carry = 0;
        for (unsigned b = 0; b < k; ++b) {
            const unsigned delta_byte = b < d ? ecb[off + b] : ext;
            const unsigned sum = base[b] + delta_byte + carry;
            data[i * k + b] = static_cast<std::uint8_t>(sum);
            carry = sum >> 8;
        }
    }
    return data;
}

std::optional<std::string>
verifyBdiBlock(const BlockData &data)
{
    unsigned best_applicable = 0;
    for (const CeInfo &info : ceTable()) {
        if (!BdiCompressor::applicable(data, info.ce))
            continue;
        if (best_applicable == 0 || info.ecbBytes < best_applicable)
            best_applicable = info.ecbBytes;

        const std::vector<std::uint8_t> ecb =
            BdiCompressor::encode(data, info.ce);
        if (ecb.size() != info.ecbBytes) {
            std::ostringstream out;
            out << info.name << ": encode produced " << ecb.size()
                << " B, table says " << info.ecbBytes << " B";
            return out.str();
        }

        std::string why;
        const std::optional<BlockData> ref =
            referenceBdiDecode(info.ce, ecb, &why);
        if (!ref) {
            std::ostringstream out;
            out << info.name << ": reference decode rejected the image: "
                << why;
            return out.str();
        }
        if (*ref != data) {
            std::ostringstream out;
            out << info.name
                << ": reference decode does not restore the block";
            return out.str();
        }
        if (BdiCompressor::decode(info.ce, ecb) != data) {
            std::ostringstream out;
            out << info.name
                << ": production decode does not restore the block";
            return out.str();
        }
    }

    const compression::CompressionResult res = BdiCompressor::compress(data);
    if (!BdiCompressor::applicable(data, res.ce))
        return std::string("compress() chose an inapplicable encoding");
    if (res.ecbBytes != ceInfo(res.ce).ecbBytes ||
        res.cbBytes != ceInfo(res.ce).cbBytes) {
        return std::string("compress() size fields disagree with the "
                           "CE table");
    }
    if (res.ecbBytes < 2 || res.ecbBytes > blockBytes)
        return std::string("compress() ECB size outside [2, 64]");
    if (res.ecbBytes != best_applicable) {
        std::ostringstream out;
        out << "compress() picked " << ceInfo(res.ce).name << " ("
            << res.ecbBytes << " B) but a " << best_applicable
            << " B encoding applies";
        return out.str();
    }
    return std::nullopt;
}

std::optional<std::string>
verifyCompressorBlock(const compression::BlockCompressor &compressor,
                      const BlockData &data)
{
    const std::string_view scheme =
        compression::schemeName(compressor.scheme());
    const unsigned size = compressor.ecbSize(data);
    if (size < 2 || size > blockBytes) {
        std::ostringstream out;
        out << scheme << ": ecbSize " << size << " outside [2, 64]";
        return out.str();
    }

    const std::vector<std::uint8_t> image = compressor.compress(data);
    if (image.size() != size) {
        std::ostringstream out;
        out << scheme << ": image is " << image.size()
            << " B but ecbSize said " << size << " B";
        return out.str();
    }
    if (compressor.decompress(image) != data) {
        std::ostringstream out;
        out << scheme << ": decompress does not restore the block";
        return out.str();
    }
    return std::nullopt;
}

std::vector<NamedBlock>
boundaryBlocks()
{
    std::vector<NamedBlock> blocks;
    const auto add = [&](std::string name, const BlockData &data) {
        blocks.push_back({ std::move(name), data });
    };

    BlockData b{};
    add("all-zero", b);

    b.fill(0xff);
    add("all-0xff", b);

    b = {};
    for (unsigned i = 0; i < blockBytes / 8; ++i)
        putLe(b, i * 8, 0xdeadbeefcafebabeULL, 8);
    add("rep8", b);

    // Per-encoding delta bounds: value 0 (= the base) is zero, the rest
    // alternate between the most negative and most positive delta a
    // d-byte field can hold; the "-over" variant bumps one value a
    // single step past the positive bound, so the encoding must NOT
    // apply and compression falls through to the next wider delta.
    struct Bd { Ce ce; unsigned k, d; };
    const Bd kinds[] = {
        { Ce::B8D1, 8, 1 }, { Ce::B8D2, 8, 2 }, { Ce::B8D3, 8, 3 },
        { Ce::B8D4, 8, 4 }, { Ce::B8D5, 8, 5 }, { Ce::B8D6, 8, 6 },
        { Ce::B8D7, 8, 7 }, { Ce::B4D1, 4, 1 }, { Ce::B4D2, 4, 2 },
        { Ce::B4D3, 4, 3 }, { Ce::B2D1, 2, 1 },
    };
    for (const Bd &bd : kinds) {
        const std::uint64_t bound = std::uint64_t{1} << (8 * bd.d - 1);
        const std::uint64_t k_mask =
            bd.k >= 8 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << (8 * bd.k)) - 1);

        b = {};
        for (unsigned i = 1; i < blockBytes / bd.k; ++i) {
            const std::uint64_t v =
                (i % 2 != 0) ? (bound - 1) : ((~bound + 1) & k_mask);
            putLe(b, i * bd.k, v, bd.k);
        }
        add(std::string(ceInfo(bd.ce).name) + "-max-delta", b);

        putLe(b, bd.k, bound & k_mask, bd.k); // one past the + bound
        add(std::string(ceInfo(bd.ce).name) + "-delta-overflow", b);
    }

    // k == 8 wrap-around pair: INT64_MIN base, INT64_MAX values — the
    // 64-bit subtractor wraps to delta -1, so B8D1 applies.
    b = {};
    putLe(b, 0, 0x8000000000000000ULL, 8);
    for (unsigned i = 1; i < blockBytes / 8; ++i)
        putLe(b, i * 8, 0x7fffffffffffffffULL, 8);
    add("b8-wraparound-pair", b);

    // One byte short of a value boundary: a lone trailing byte breaks
    // Zeros / Rep8 and forces the delta path on the final value only.
    b = {};
    b[blockBytes - 1] = 0x01;
    add("last-byte-one", b);

    b.fill(0xff);
    b[blockBytes - 1] = 0xfe;
    add("last-byte-short", b);

    b = {};
    b[0] = 0x01; // nonzero base, zero tail
    add("first-byte-one", b);

    // Deterministic incompressible-ish pattern (no BDI encoding besides
    // Uncompressed should survive the byte soup).
    for (unsigned i = 0; i < blockBytes; ++i)
        b[i] = static_cast<std::uint8_t>(i * 151 + 43);
    add("byte-soup", b);

    return blocks;
}

} // namespace hllc::check
