#include "check/differential.hh"

#include <memory>
#include <sstream>

#include "check/rig.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "forecast/forecast.hh"
#include "hierarchy/timing.hh"
#include "sim/grid.hh"

namespace hllc::check
{

namespace
{

using hybrid::HybridLlc;
using hybrid::HybridLlcConfig;
using hybrid::LlcEvent;
using replay::LlcTrace;

std::string
eventToString(std::size_t index, const LlcEvent &event)
{
    static constexpr const char *names[] = { "GetS", "GetX", "PutClean",
                                             "PutDirty" };
    std::ostringstream out;
    out << "event " << index << ": "
        << names[static_cast<unsigned>(event.type)] << " blk=0x" << std::hex
        << event.blockNum << std::dec
        << " ecb=" << unsigned{event.ecbBytes}
        << " core=" << unsigned{event.core};
    return out.str();
}

/** End-of-trace tag-store and counter comparison (fast vs golden). */
std::optional<std::string>
compareFinalState(const HybridLlc &fast, const GoldenLlc &golden)
{
    const HybridLlcConfig &cfg = fast.config();
    for (std::uint32_t set = 0; set < cfg.numSets; ++set) {
        for (std::uint32_t w = 0; w < cfg.totalWays(); ++w) {
            const HybridLlc::LineView f = fast.lineView(set, w);
            const GoldenLlc::WayView g = golden.way(set, w);
            if (f.valid != g.valid ||
                (f.valid && (f.blockNum != g.blockNum ||
                             f.dirty != g.dirty ||
                             f.ecbBytes != g.ecbBytes))) {
                std::ostringstream out;
                out << "final tag store: set " << set << " way " << w
                    << " fast={valid=" << f.valid << " blk=0x" << std::hex
                    << f.blockNum << std::dec
                    << " dirty=" << f.dirty
                    << " ecb=" << unsigned{f.ecbBytes}
                    << "} golden={valid=" << g.valid << " blk=0x"
                    << std::hex << g.blockNum << std::dec
                    << " dirty=" << g.dirty << " ecb=" << g.ecbBytes
                    << "}";
                return out.str();
            }
        }
    }

    const auto counter = [&](const char *name) {
        return fast.stats().counterValue(name);
    };
    const struct { const char *name; std::uint64_t fast, golden; } totals[] =
    {
        { "demand accesses", fast.demandAccesses(),
          golden.demandAccesses() },
        { "demand hits", fast.demandHits(), golden.demandHits() },
        { "nvm bytes written", fast.nvmBytesWritten(),
          golden.nvmBytesWritten() },
        { "dirty writebacks", counter("writebacks_dirty"),
          golden.writebacks() },
    };
    for (const auto &t : totals) {
        if (t.fast != t.golden) {
            std::ostringstream out;
            out << "final counters: " << t.name << " fast=" << t.fast
                << " golden=" << t.golden;
            return out.str();
        }
    }
    return std::nullopt;
}

/** Shared per-cell summary for rerun/jobs equivalence checks. */
struct ReplaySummary
{
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandHits = 0;
    std::uint64_t nvmBytesWritten = 0;
    std::uint64_t writebacks = 0;

    bool operator==(const ReplaySummary &) const = default;
};

ReplaySummary
replayOnce(const LlcTrace &trace, const HybridLlcConfig &config,
           std::vector<DecisionRecord> *decisions)
{
    FastRig rig = makeFastRig(config);
    std::vector<DecisionRecord> scratch;
    RecordingProbe probe(decisions ? *decisions : scratch);
    if (decisions)
        rig.llc->setProbe(&probe);
    for (const LlcEvent &event : trace.events()) {
        const hybrid::AccessOutcome outcome = rig.llc->handle(event);
        if (decisions)
            appendOutcome(*decisions, outcome);
    }
    return { rig.llc->demandAccesses(), rig.llc->demandHits(),
             rig.llc->nvmBytesWritten(),
             rig.llc->stats().counterValue("writebacks_dirty") };
}

} // anonymous namespace

std::string_view
degenerateModeName(DegenerateMode mode)
{
    switch (mode) {
      case DegenerateMode::Pristine:
        return "pristine";
      case DegenerateMode::CompressionOff:
        return "compression-off";
      case DegenerateMode::SramOnly:
        return "sram-only";
    }
    return "?";
}

HybridLlcConfig
degenerateConfig(HybridLlcConfig config, DegenerateMode mode)
{
    if (mode == DegenerateMode::SramOnly) {
        config.sramWays = config.totalWays();
        config.nvmWays = 0;
    }
    return config;
}

LlcEvent
degenerateEvent(LlcEvent event, DegenerateMode mode)
{
    if (mode == DegenerateMode::CompressionOff &&
        (event.type == hybrid::LlcEventType::PutClean ||
         event.type == hybrid::LlcEventType::PutDirty)) {
        event.ecbBytes = blockBytes;
    }
    return event;
}

GoldenDiffResult
diffGolden(const LlcTrace &trace, HybridLlcConfig config,
           DegenerateMode mode, GoldenOptions golden_options)
{
    config = degenerateConfig(config, mode);
    FastRig rig = makeFastRig(config);
    GoldenLlc golden(config, golden_options);

    std::vector<DecisionRecord> fast_records;
    std::vector<DecisionRecord> golden_records;
    RecordingProbe probe(fast_records);
    rig.llc->setProbe(&probe);

    GoldenDiffResult result;
    for (std::size_t i = 0; i < trace.events().size(); ++i) {
        const LlcEvent event = degenerateEvent(trace.events()[i], mode);

        fast_records.clear();
        appendOutcome(fast_records, rig.llc->handle(event));
        golden_records.clear();
        appendOutcome(golden_records, golden.handle(event, &golden_records));

        ++result.eventsCompared;
        if (fast_records != golden_records) {
            const std::uint32_t set = rig.llc->setOf(event.blockNum);
            std::ostringstream out;
            out << eventToString(i, event) << " (mode "
                << degenerateModeName(mode) << ")\n"
                << "set=" << set << " cpth fast=" << rig.llc->cpthForSet(set)
                << " golden=" << golden.cpthForSet(set) << "\n"
                << "fast decisions:\n" << toString(fast_records)
                << "golden decisions:\n" << toString(golden_records);
            result.divergence = { i, event, out.str() };
            return result;
        }
    }

    if (auto mismatch = compareFinalState(*rig.llc, golden)) {
        result.divergence = { trace.events().size(), LlcEvent{},
                              std::move(*mismatch) };
    }
    return result;
}

std::optional<std::string>
diffRerun(const LlcTrace &trace, const HybridLlcConfig &config)
{
    std::vector<DecisionRecord> first;
    std::vector<DecisionRecord> second;
    const ReplaySummary a = replayOnce(trace, config, &first);
    const ReplaySummary b = replayOnce(trace, config, &second);

    if (first != second) {
        // Locate the first differing record for the report.
        std::size_t at = 0;
        while (at < first.size() && at < second.size() &&
               first[at] == second[at]) {
            ++at;
        }
        std::ostringstream out;
        out << "rerun decision streams diverge at record " << at << ":\n"
            << "  run 1: "
            << (at < first.size() ? toString(first[at])
                                  : std::string("(stream ended)"))
            << "\n  run 2: "
            << (at < second.size() ? toString(second[at])
                                   : std::string("(stream ended)"));
        return out.str();
    }
    if (!(a == b)) {
        std::ostringstream out;
        out << "rerun summaries diverge: accesses " << a.demandAccesses
            << "/" << b.demandAccesses << ", hits " << a.demandHits << "/"
            << b.demandHits << ", nvm bytes " << a.nvmBytesWritten << "/"
            << b.nvmBytesWritten << ", writebacks " << a.writebacks << "/"
            << b.writebacks;
        return out.str();
    }
    return std::nullopt;
}

std::optional<std::string>
diffJobs(const LlcTrace &trace,
         const std::vector<HybridLlcConfig> &configs, unsigned jobs)
{
    const auto cell = [&](std::size_t i) {
        return replayOnce(trace, configs[i], nullptr);
    };
    const std::vector<ReplaySummary> serial =
        sim::runGrid(configs.size(), cell, 1);
    const std::vector<ReplaySummary> parallel =
        sim::runGrid(configs.size(), cell, jobs);

    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (!(serial[i] == parallel[i])) {
            std::ostringstream out;
            out << "grid cell " << i << " differs between jobs=1 and jobs="
                << jobs << ": hits " << serial[i].demandHits << "/"
                << parallel[i].demandHits << ", nvm bytes "
                << serial[i].nvmBytesWritten << "/"
                << parallel[i].nvmBytesWritten;
            return out.str();
        }
    }
    return std::nullopt;
}

std::optional<std::string>
diffResume(const LlcTrace &trace, const HybridLlcConfig &config,
           const std::string &checkpoint_dir)
{
    HLLC_ASSERT(config.nvmWays > 0,
                "resume diff forecasts the NVM part; nvmWays must be > 0");
    // A short forecast over a deliberately weak endurance fabric, so
    // capacity actually moves within a handful of steps.
    const fault::NvmGeometry geom{ config.numSets, config.nvmWays,
                                   blockBytes };
    forecast::ForecastConfig fc;
    fc.maxSteps = 4;
    fc.warmupFraction = 0.0;

    const auto run = [&](const forecast::RunOptions &options) {
        const fault::EnduranceModel model(geom, { 1e8, 0.2 },
                                          Xoshiro256StarStar(3));
        forecast::ForecastEngine engine(model, config, { &trace },
                                        hierarchy::TimingParams{}, fc);
        return engine.run(options);
    };

    const std::vector<forecast::ForecastPoint> reference = run({});

    const std::string path = checkpoint_dir + "/resume_diff.ckpt";
    forecast::RunOptions stop;
    stop.checkpointPath = path;
    stop.stopAfterSteps = 1;
    std::vector<forecast::ForecastPoint> stopped;
    try {
        stopped = run(stop);
    } catch (const IoError &e) {
        return "stop run could not write its checkpoint: " +
               std::string(e.what());
    }

    // The stop run saves its checkpoint when it reaches the step
    // boundary; if the forecast ended before that (e.g. a trace with no
    // timing metadata yields a zero-length window), resuming would
    // silently test nothing.
    if (stopped.size() >= reference.size()) {
        std::ostringstream out;
        out << "stop run finished all " << stopped.size()
            << " steps before the stopAfterSteps boundary; the resume "
               "path was never exercised";
        return out.str();
    }
    try {
        serial::readFileBytes(path);
    } catch (const IoError &e) {
        std::ostringstream out;
        out << "stop run wrote no checkpoint: " << e.what();
        return out.str();
    }

    forecast::RunOptions resume;
    resume.checkpointPath = path;
    resume.resume = true;
    const std::vector<forecast::ForecastPoint> resumed = run(resume);

    if (resumed.size() != reference.size()) {
        std::ostringstream out;
        out << "resumed series has " << resumed.size()
            << " points, uninterrupted run has " << reference.size();
        return out.str();
    }
    for (std::size_t i = 0; i < reference.size(); ++i) {
        const forecast::ForecastPoint &a = reference[i];
        const forecast::ForecastPoint &b = resumed[i];
        if (a.time != b.time || a.capacity != b.capacity ||
            a.meanIpc != b.meanIpc || a.hitRate != b.hitRate ||
            a.nvmBytesPerSecond != b.nvmBytesPerSecond) {
            std::ostringstream out;
            out << "resumed series diverges at step " << i << ": capacity "
                << a.capacity << "/" << b.capacity << ", IPC " << a.meanIpc
                << "/" << b.meanIpc << ", hit rate " << a.hitRate << "/"
                << b.hitRate;
            return out.str();
        }
    }
    return std::nullopt;
}

} // namespace hllc::check
