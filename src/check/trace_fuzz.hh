/**
 * @file
 * Structure-aware trace fuzzing with ddmin shrinking.
 *
 * The fuzzer generates and mutates .hlt event streams that respect the
 * trace grammar (valid event types, ECB sizes in [2, 64], block numbers
 * clustered on a small working set so sets actually conflict), runs
 * short differential passes (golden diff across degenerate modes, with
 * periodic rerun-determinism and Belady-bound passes) over a grid of
 * policy configurations, and shrinks any failing trace to a minimal
 * reproducer with delta debugging before reporting it.
 */

#ifndef HLLC_CHECK_TRACE_FUZZ_HH
#define HLLC_CHECK_TRACE_FUZZ_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "check/differential.hh"
#include "replay/llc_trace.hh"

namespace hllc::check
{

/** Fuzzing-campaign controls. */
struct FuzzConfig
{
    std::uint64_t seed = 1;           //!< campaign seed (deterministic)
    double budgetSeconds = 60.0;      //!< wall-clock budget
    std::size_t maxIterations = 0;    //!< hard cap; 0 = budget only
    std::size_t eventsPerTrace = 4096;
    std::uint32_t numSets = 32;       //!< small geometry = fast rounds
    std::uint32_t sramWays = 4;
    std::uint32_t nvmWays = 12;
};

/** One shrunken failure found by a campaign. */
struct FuzzFailure
{
    std::string description;          //!< divergence at the shrunk trace
    replay::LlcTrace reproducer;      //!< ddmin-minimal failing trace
    hybrid::HybridLlcConfig config;   //!< configuration that failed
    DegenerateMode mode = DegenerateMode::Pristine;
    std::size_t iteration = 0;        //!< fuzz round that found it
    std::size_t originalEvents = 0;   //!< trace size before shrinking
};

/** Outcome of one campaign. */
struct FuzzReport
{
    std::size_t iterations = 0;
    std::size_t tracesReplayed = 0;
    std::optional<FuzzFailure> failure; //!< first failure (shrunk)

    bool ok() const { return !failure.has_value(); }
};

/** Build an LlcTrace from an explicit event vector (fuzz/shrink glue). */
replay::LlcTrace
makeTrace(std::vector<hybrid::LlcEvent> events,
          const std::string &mix_name = "fuzz");

/**
 * Generate a random grammar-respecting trace: @p events events over a
 * working set a few times larger than the cache, mixed Get/Put types,
 * ECB sizes biased towards the BDI encoding boundaries.
 */
replay::LlcTrace
generateTrace(std::uint64_t seed, std::size_t events,
              std::uint32_t num_sets);

/**
 * Structure-aware mutation of @p trace: a handful of random edits
 * (type flips, duplications, deletions, block aliasing onto a hot set,
 * ECB boundary values), each keeping the trace grammatically valid.
 */
replay::LlcTrace
mutateTrace(const replay::LlcTrace &trace, std::uint64_t seed);

/** Predicate deciding whether a candidate trace still fails. */
using FailPredicate = std::function<bool(const replay::LlcTrace &)>;

/**
 * Delta-debugging (ddmin) shrink: the smallest event subsequence of
 * @p trace for which @p fails stays true. @p fails(trace) must be true
 * on entry. The result is 1-minimal: removing any single remaining
 * event makes the failure disappear.
 */
replay::LlcTrace
shrinkTrace(const replay::LlcTrace &trace, const FailPredicate &fails);

/**
 * Run a fuzzing campaign: generate/mutate traces, differential-check
 * each against the policy × degenerate-mode grid until the budget is
 * exhausted or a failure is found (which is then shrunk). @p golden
 * carries the deliberate-bug knobs used to mutation-test this very
 * machinery.
 */
FuzzReport fuzz(const FuzzConfig &config, GoldenOptions golden = {});

} // namespace hllc::check

#endif // HLLC_CHECK_TRACE_FUZZ_HH
