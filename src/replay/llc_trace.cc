#include "replay/llc_trace.hh"

#include <cstdio>
#include <memory>

#include "common/logging.hh"

namespace hllc::replay
{

namespace
{

constexpr std::uint32_t traceMagic = 0x484c4c54; // "HLLT"
constexpr std::uint32_t traceVersion = 1;

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
writeOrDie(const void *data, std::size_t size, std::FILE *f,
           const std::string &path)
{
    if (std::fwrite(data, 1, size, f) != size)
        fatal("short write to trace file '%s'", path.c_str());
}

void
readOrDie(void *data, std::size_t size, std::FILE *f,
          const std::string &path)
{
    if (std::fread(data, 1, size, f) != size)
        fatal("truncated trace file '%s'", path.c_str());
}

/** On-disk event record (packed, little-endian host assumed). */
struct DiskEvent
{
    std::uint64_t blockNum;
    std::uint8_t type;
    std::uint8_t ecbBytes;
    std::uint8_t core;
    std::uint8_t pad = 0;
};

/** On-disk per-core metadata. */
struct DiskCoreMeta
{
    std::uint64_t instructions;
    std::uint64_t refs;
    std::uint64_t l1Hits;
    std::uint64_t l2Hits;
    std::uint64_t llcDemands;
    double baseCpi;
};

} // anonymous namespace

void
LlcTrace::save(const std::string &path) const
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        fatal("cannot open trace file '%s' for writing", path.c_str());

    writeOrDie(&traceMagic, sizeof(traceMagic), f.get(), path);
    writeOrDie(&traceVersion, sizeof(traceVersion), f.get(), path);

    const auto name_len =
        static_cast<std::uint32_t>(meta_.mixName.size());
    writeOrDie(&name_len, sizeof(name_len), f.get(), path);
    writeOrDie(meta_.mixName.data(), name_len, f.get(), path);

    for (const CoreMeta &core : meta_.cores) {
        const DiskCoreMeta m{ core.instructions, core.refs, core.l1Hits,
                              core.l2Hits, core.llcDemands,
                              core.baseCpi };
        writeOrDie(&m, sizeof(m), f.get(), path);
    }

    const auto count = static_cast<std::uint64_t>(events_.size());
    writeOrDie(&count, sizeof(count), f.get(), path);
    for (const hybrid::LlcEvent &ev : events_) {
        const DiskEvent d{ ev.blockNum,
                           static_cast<std::uint8_t>(ev.type),
                           ev.ecbBytes, ev.core };
        writeOrDie(&d, sizeof(d), f.get(), path);
    }
}

LlcTrace
LlcTrace::load(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        fatal("cannot open trace file '%s'", path.c_str());

    std::uint32_t magic = 0, version = 0;
    readOrDie(&magic, sizeof(magic), f.get(), path);
    readOrDie(&version, sizeof(version), f.get(), path);
    if (magic != traceMagic)
        fatal("'%s' is not an hllc trace file", path.c_str());
    if (version != traceVersion)
        fatal("trace file '%s' has unsupported version %u",
              path.c_str(), version);

    LlcTrace trace;
    std::uint32_t name_len = 0;
    readOrDie(&name_len, sizeof(name_len), f.get(), path);
    if (name_len > 4096)
        fatal("corrupt trace file '%s'", path.c_str());
    trace.meta_.mixName.resize(name_len);
    readOrDie(trace.meta_.mixName.data(), name_len, f.get(), path);

    for (CoreMeta &core : trace.meta_.cores) {
        DiskCoreMeta m{};
        readOrDie(&m, sizeof(m), f.get(), path);
        core.instructions = m.instructions;
        core.refs = m.refs;
        core.l1Hits = m.l1Hits;
        core.l2Hits = m.l2Hits;
        core.llcDemands = m.llcDemands;
        core.baseCpi = m.baseCpi;
    }

    std::uint64_t count = 0;
    readOrDie(&count, sizeof(count), f.get(), path);
    trace.events_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        DiskEvent d{};
        readOrDie(&d, sizeof(d), f.get(), path);
        trace.events_.push_back(hybrid::LlcEvent{
            d.blockNum, static_cast<hybrid::LlcEventType>(d.type),
            d.ecbBytes, d.core });
    }
    return trace;
}

} // namespace hllc::replay
