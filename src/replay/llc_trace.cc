#include "replay/llc_trace.hh"

#include <algorithm>

#include "common/failpoint.hh"
#include "common/numfmt.hh"
#include "common/serialize.hh"

namespace hllc::replay
{

namespace
{

/** v1: raw packed structs, no checksum (read-compat only). */
constexpr std::uint32_t traceMagicV1 = 0x484c4c54; // "HLLT"
constexpr std::uint32_t traceVersionV1 = 1;

/** v2: CRC32-checked chunked container (what save() writes). */
constexpr std::uint32_t traceMagicV2 = 0x484c5432; // "HLT2"
constexpr std::uint32_t traceVersionV2 = 1;

/** Longest mix name any sane trace carries. */
constexpr std::uint32_t maxNameLen = 4096;

/** On-disk v1 event record stride: u64 + 4 x u8, padded to 16 bytes. */
constexpr std::size_t v1EventStride = 16;
/** On-disk v1 per-core metadata stride: 5 x u64 + f64. */
constexpr std::size_t v1CoreStride = 48;
/** On-disk v2 event record stride: u64 + 3 x u8, unpadded. */
constexpr std::size_t v2EventStride = 11;

/** Events staged per Decoder::raw() call by the batched loaders. */
constexpr std::size_t decodeBatch = 4096;

hybrid::LlcEventType
checkedEventType(std::uint8_t raw, const std::string &path)
{
    if (raw > static_cast<std::uint8_t>(hybrid::LlcEventType::PutDirty))
        throw IoError("trace file '" + path + "' has invalid event type " +
                      formatU64(raw));
    return static_cast<hybrid::LlcEventType>(raw);
}

/** Little-endian u64 from an unaligned record pointer. */
std::uint64_t
readU64Le(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/**
 * Decode @p count event records of @p stride bytes in batches: one
 * bounds-checked Decoder::raw() per ~4096 records into a staging buffer,
 * then plain pointer unpacking, instead of four Decoder calls (each with
 * its own bounds check) per event. The event count was validated against
 * the bytes actually present by the caller, and reserve() is clamped to
 * that bound again here so a miscounted header can never over-allocate.
 */
void
decodeEventRecords(serial::Decoder &dec, std::uint64_t count,
                   std::size_t stride, const std::string &path,
                   LlcTrace &trace)
{
    const std::uint64_t fit = dec.remaining() / stride;
    trace.reserve(static_cast<std::size_t>(std::min(count, fit)));

    std::vector<std::uint8_t> buf(decodeBatch * stride);
    std::uint64_t done = 0;
    while (done < count) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(decodeBatch, count - done));
        dec.raw(buf.data(), n * stride);
        const std::uint8_t *p = buf.data();
        for (std::size_t i = 0; i < n; ++i, p += stride) {
            trace.append(hybrid::LlcEvent{
                readU64Le(p), checkedEventType(p[8], path), p[9], p[10] });
        }
        done += n;
    }
}

/**
 * Parse the legacy v1 image. Every length is validated against the
 * bytes actually present before any allocation, unlike the original
 * reader which trusted the header counts.
 */
LlcTrace
loadV1(serial::Decoder &dec, const std::string &path)
{
    const std::uint32_t version = dec.u32();
    if (version != traceVersionV1)
        throw IoError("trace file '" + path + "' has unsupported version " +
                      formatU64(version));

    LlcTrace trace;
    const std::uint32_t name_len = dec.u32();
    if (name_len > maxNameLen || name_len > dec.remaining())
        throw IoError("trace file '" + path +
                      "' declares an implausible mix-name length");
    trace.meta().mixName.resize(name_len);
    dec.raw(trace.meta().mixName.data(), name_len);

    if (dec.remaining() < traceCores * v1CoreStride + 8)
        throw IoError("trace file '" + path +
                      "' is truncated inside the core metadata");
    for (CoreMeta &core : trace.meta().cores) {
        core.instructions = dec.u64();
        core.refs = dec.u64();
        core.l1Hits = dec.u64();
        core.l2Hits = dec.u64();
        core.llcDemands = dec.u64();
        core.baseCpi = dec.f64();
    }

    const std::uint64_t count = dec.u64();
    if (count > dec.remaining() / v1EventStride)
        throw IoError("trace file '" + path +
                      "' declares more events than the file holds");
    decodeEventRecords(dec, count, v1EventStride, path, trace);
    if (!dec.atEnd())
        throw IoError("trace file '" + path +
                      "' has trailing bytes after the event stream");
    return trace;
}

LlcTrace
loadV2(const std::vector<std::uint8_t> &bytes, const std::string &path)
{
    serial::Container container;
    try {
        container = serial::Container::decode(bytes.data(), bytes.size(),
                                              traceMagicV2, traceVersionV2,
                                              traceVersionV2);
    } catch (const IoError &e) {
        throw IoError("trace file '" + path + "': " + e.what());
    }

    LlcTrace trace;
    serial::Decoder meta = container.open("meta");
    trace.meta().mixName = meta.str(maxNameLen);
    for (CoreMeta &core : trace.meta().cores) {
        core.instructions = meta.u64();
        core.refs = meta.u64();
        core.l1Hits = meta.u64();
        core.l2Hits = meta.u64();
        core.llcDemands = meta.u64();
        core.baseCpi = meta.f64();
    }

    serial::Decoder evts = container.open("evts");
    const std::uint64_t count = evts.u64();
    if (count > evts.remaining() / v2EventStride)
        throw IoError("trace file '" + path +
                      "' declares more events than the chunk holds");
    decodeEventRecords(evts, count, v2EventStride, path, trace);
    return trace;
}

} // anonymous namespace

void
LlcTrace::save(const std::string &path) const
{
    serial::Container container;

    serial::Encoder &meta = container.add("meta");
    meta.str(meta_.mixName);
    for (const CoreMeta &core : meta_.cores) {
        meta.u64(core.instructions);
        meta.u64(core.refs);
        meta.u64(core.l1Hits);
        meta.u64(core.l2Hits);
        meta.u64(core.llcDemands);
        meta.f64(core.baseCpi);
    }

    serial::Encoder &evts = container.add("evts");
    evts.u64(events_.size());
    for (const hybrid::LlcEvent &ev : events_) {
        evts.u64(ev.blockNum);
        evts.u8(static_cast<std::uint8_t>(ev.type));
        evts.u8(ev.ecbBytes);
        evts.u8(ev.core);
    }

    container.save(path, traceMagicV2, traceVersionV2);
}

LlcTrace
LlcTrace::load(const std::string &path)
{
    HLLC_FAILPOINT("trace.decode");
    const std::vector<std::uint8_t> bytes = serial::readFileBytes(path);
    serial::Decoder dec(bytes);
    if (dec.remaining() < 4)
        throw IoError("'" + path + "' is not an hllc trace file");
    const std::uint32_t magic = dec.u32();
    if (magic == traceMagicV1)
        return loadV1(dec, path);
    if (magic == traceMagicV2)
        return loadV2(bytes, path);
    throw IoError("'" + path + "' is not an hllc trace file");
}

} // namespace hllc::replay
