/**
 * @file
 * LLC-level trace container.
 *
 * Because the private L1/L2 levels behave independently of the LLC's
 * contents in the non-inclusive hierarchy (Sec. III-A), the stream of
 * GetS/GetX/Put events the LLC observes is policy-independent: it can be
 * captured once per workload mix and replayed against any number of LLC
 * configurations. This is the same decomposition the paper uses (the
 * HyCSim fast trace-driven simulator [16] for exploration, gem5 for
 * capture-grade detail).
 */

#ifndef HLLC_REPLAY_LLC_TRACE_HH
#define HLLC_REPLAY_LLC_TRACE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "hybrid/types.hh"

namespace hllc::replay
{

/** Number of cores the trace format carries. */
inline constexpr std::size_t traceCores = 4;

/** Per-core capture statistics needed to rebuild timing during replay. */
struct CoreMeta
{
    std::uint64_t instructions = 0;
    std::uint64_t refs = 0;        //!< memory references issued
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;      //!< serviced by the private L2
    std::uint64_t llcDemands = 0;  //!< GetS + GetX sent to the LLC
    double baseCpi = 0.4;          //!< non-memory CPI of the app model
};

/** Capture-wide metadata. */
struct TraceMeta
{
    std::array<CoreMeta, traceCores> cores;
    std::string mixName;
};

class LlcTrace
{
  public:
    void append(const hybrid::LlcEvent &event) { events_.push_back(event); }

    const std::vector<hybrid::LlcEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }

    TraceMeta &meta() { return meta_; }
    const TraceMeta &meta() const { return meta_; }

    void reserve(std::size_t n) { events_.reserve(n); }

    /**
     * Serialise to a binary .hlt file. Writes the v2 format: a
     * CRC32-checksummed chunked container (common/serialize.hh),
     * persisted atomically (temp file + fsync + rename). Throws
     * hllc::IoError on I/O failure.
     */
    void save(const std::string &path) const;

    /**
     * Load a trace written by save(). Reads both the current v2
     * container format and legacy v1 raw-struct files; every declared
     * length is validated against the actual file size before any
     * allocation. Throws hllc::IoError on corruption, truncation or
     * unsupported version — library code never kills the process.
     */
    static LlcTrace load(const std::string &path);

  private:
    std::vector<hybrid::LlcEvent> events_;
    TraceMeta meta_;
};

} // namespace hllc::replay

#endif // HLLC_REPLAY_LLC_TRACE_HH
