#include "replay/replayer.hh"

#include "common/logging.hh"

namespace hllc::replay
{

using hybrid::AccessOutcome;
using hybrid::LlcEvent;
using hybrid::LlcEventType;

TraceReplayer::TraceReplayer(double warmup_fraction)
    : warmupFraction_(warmup_fraction)
{
    HLLC_ASSERT(warmup_fraction >= 0.0 && warmup_fraction < 1.0);
}

ReplayResult
TraceReplayer::replay(const LlcTrace &trace, hybrid::HybridLlc &llc,
                      const IntervalCallback &on_interval,
                      std::size_t num_intervals) const
{
    llc.reset();
    llc.resetStats();

    ReplayResult result;
    result.warmupFraction = warmupFraction_;

    const auto &events = trace.events();
    const std::size_t warmup_end = static_cast<std::size_t>(
        warmupFraction_ * static_cast<double>(events.size()));

    // Interval boundaries split the measured window into equal event
    // ranges (the final boundary is exactly the last measured event, so
    // the last snapshot carries the replay totals).
    const std::size_t measured = events.size() - warmup_end;
    const bool sampling =
        on_interval && num_intervals > 0 && measured > 0;
    std::size_t next_interval = 0;
    const auto boundary = [&](std::size_t k) {
        return warmup_end + ((k + 1) * measured) / num_intervals;
    };

    std::uint64_t nvm_writes_at_measure_start = 0;
    std::uint64_t nvm_bytes_at_measure_start = 0;

    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i == warmup_end) {
            // Keep contents (that is the point of the warm-up) but drop
            // the statistics accumulated so far.
            llc.resetStats();
            nvm_writes_at_measure_start = 0;
            nvm_bytes_at_measure_start = 0;
        }

        const LlcEvent &ev = events[i];
        const AccessOutcome outcome = llc.handle(ev);

        if (i < warmup_end)
            continue;

        ++result.measuredEvents;
        CoreOutcome &core = result.cores[ev.core % traceCores];

        if (ev.type == LlcEventType::GetS ||
            ev.type == LlcEventType::GetX) {
            switch (outcome) {
              case AccessOutcome::HitSram:
                ++core.llcHitsSram;
                break;
              case AccessOutcome::HitNvm:
                ++core.llcHitsNvm;
                break;
              case AccessOutcome::Miss:
                ++core.llcMisses;
                break;
            }
        } else {
            // Attribute NVM write growth to the core issuing the Put.
            const std::uint64_t writes = llc.nvmWrites();
            if (writes > nvm_writes_at_measure_start) {
                core.nvmWrites += writes - nvm_writes_at_measure_start;
            }
            nvm_writes_at_measure_start = writes;
        }

        // With more intervals than events several boundaries coincide;
        // the loop emits every one of them (as empty intervals).
        while (sampling && next_interval < num_intervals &&
               i + 1 == boundary(next_interval)) {
            IntervalSnapshot snap;
            snap.interval = next_interval;
            snap.measuredEvents = result.measuredEvents;
            snap.demandAccesses = llc.demandAccesses();
            snap.demandHits = llc.demandHits();
            snap.nvmWrites = llc.nvmWrites();
            snap.nvmBytesWritten = llc.nvmBytesWritten();
            on_interval(snap);
            ++next_interval;
        }
    }

    result.demandAccesses = llc.demandAccesses();
    result.demandHits = llc.demandHits();
    result.hitRate = llc.hitRate();
    result.nvmBytesWritten =
        llc.nvmBytesWritten() - nvm_bytes_at_measure_start;
    return result;
}

} // namespace hllc::replay
