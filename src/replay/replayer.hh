/**
 * @file
 * Fast trace-driven LLC simulation (the HyCSim analogue, paper Sec. V-A).
 *
 * Replays a captured LLC trace against a HybridLlc instance, with an
 * optional warm-up prefix excluded from statistics, and returns per-core
 * outcome counts plus an LLC stats snapshot. The replayer never touches
 * the fault map's wear directly: the LLC records byte writes against it,
 * and the forecast layer decides how to age them.
 */

#ifndef HLLC_REPLAY_REPLAYER_HH
#define HLLC_REPLAY_REPLAYER_HH

#include <array>
#include <cstdint>

#include "hybrid/hybrid_llc.hh"
#include "replay/llc_trace.hh"

namespace hllc::replay
{

/** Measured-window outcome counts of one core. */
struct CoreOutcome
{
    std::uint64_t llcHitsSram = 0;
    std::uint64_t llcHitsNvm = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t nvmWrites = 0;   //!< NVM block writes from this core
};

/** Result of replaying one trace against one LLC configuration. */
struct ReplayResult
{
    std::array<CoreOutcome, traceCores> cores;
    std::uint64_t measuredEvents = 0;  //!< events after warm-up
    std::uint64_t demandAccesses = 0;  //!< GetS + GetX after warm-up
    std::uint64_t demandHits = 0;
    std::uint64_t nvmBytesWritten = 0; //!< post-warm-up NVM byte writes
    double hitRate = 0.0;

    /** Fraction of the trace treated as warm-up. */
    double warmupFraction = 0.0;
};

class TraceReplayer
{
  public:
    /**
     * @param warmup_fraction prefix of the trace replayed but excluded
     *        from the returned statistics
     */
    explicit TraceReplayer(double warmup_fraction = 0.2);

    /**
     * Replay @p trace against @p llc. Resets the LLC's contents and stats
     * first (dueling state and fault-map wear persist). Wear recorded in
     * the fault map covers the whole replay including warm-up.
     */
    ReplayResult replay(const LlcTrace &trace, hybrid::HybridLlc &llc) const;

  private:
    double warmupFraction_;
};

} // namespace hllc::replay

#endif // HLLC_REPLAY_REPLAYER_HH
