/**
 * @file
 * Fast trace-driven LLC simulation (the HyCSim analogue, paper Sec. V-A).
 *
 * Replays a captured LLC trace against a HybridLlc instance, with an
 * optional warm-up prefix excluded from statistics, and returns per-core
 * outcome counts plus an LLC stats snapshot. The replayer never touches
 * the fault map's wear directly: the LLC records byte writes against it,
 * and the forecast layer decides how to age them.
 */

#ifndef HLLC_REPLAY_REPLAYER_HH
#define HLLC_REPLAY_REPLAYER_HH

#include <array>
#include <cstdint>
#include <functional>

#include "hybrid/hybrid_llc.hh"
#include "replay/llc_trace.hh"

namespace hllc::replay
{

/** Measured-window outcome counts of one core. */
struct CoreOutcome
{
    std::uint64_t llcHitsSram = 0;
    std::uint64_t llcHitsNvm = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t nvmWrites = 0;   //!< NVM block writes from this core
};

/** Result of replaying one trace against one LLC configuration. */
struct ReplayResult
{
    std::array<CoreOutcome, traceCores> cores;
    std::uint64_t measuredEvents = 0;  //!< events after warm-up
    std::uint64_t demandAccesses = 0;  //!< GetS + GetX after warm-up
    std::uint64_t demandHits = 0;
    std::uint64_t nvmBytesWritten = 0; //!< post-warm-up NVM byte writes
    double hitRate = 0.0;

    /** Fraction of the trace treated as warm-up. */
    double warmupFraction = 0.0;
};

/**
 * Cumulative measured-window state at one interval boundary of a replay
 * (observability export: per-interval IPC/hit-rate/NVM-write series).
 * All values count from the end of warm-up up to the boundary, so the
 * caller derives per-interval values by differencing consecutive
 * snapshots. Purely a function of the trace and the LLC configuration —
 * never of wall clock — so emitted series are deterministic.
 */
struct IntervalSnapshot
{
    std::size_t interval = 0;          //!< 0-based interval index
    std::uint64_t measuredEvents = 0;  //!< events since warm-up end
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandHits = 0;
    std::uint64_t nvmWrites = 0;
    std::uint64_t nvmBytesWritten = 0;
};

class TraceReplayer
{
  public:
    /** Observer invoked at each interval boundary during replay(). */
    using IntervalCallback = std::function<void(const IntervalSnapshot &)>;

    /**
     * @param warmup_fraction prefix of the trace replayed but excluded
     *        from the returned statistics
     */
    explicit TraceReplayer(double warmup_fraction = 0.2);

    /**
     * Replay @p trace against @p llc. Resets the LLC's contents and stats
     * first (dueling state and fault-map wear persist). Wear recorded in
     * the fault map covers the whole replay including warm-up.
     *
     * When @p on_interval is set, the measured window is split into
     * @p num_intervals equal event ranges and the callback fires once at
     * the end of each with cumulative counts (the last snapshot equals
     * the replay totals).
     */
    ReplayResult replay(const LlcTrace &trace, hybrid::HybridLlc &llc,
                        const IntervalCallback &on_interval = nullptr,
                        std::size_t num_intervals = 0) const;

  private:
    double warmupFraction_;
};

} // namespace hllc::replay

#endif // HLLC_REPLAY_REPLAYER_HH
