#include "forecast/forecast.hh"

#include <algorithm>
#include <memory>

#include "common/error.hh"
#include "common/failpoint.hh"
#include "common/numfmt.hh"
#include "common/interrupt.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace hllc::forecast
{

namespace
{

/**
 * Checkpoint container identity ("HLCK"). Version 2 added the "stat"
 * (engine stats), "lstat" (LLC stats) and "mtrc" (metric series) chunks
 * so a resumed run dumps/exports exactly what an uninterrupted one
 * would. v1 checkpoints are rejected by the version range check and the
 * run restarts from scratch — the documented fallback for any
 * unreadable checkpoint.
 */
constexpr std::uint32_t checkpointMagic = 0x484c434b;
constexpr std::uint32_t checkpointVersion = 2;

/** Shape of the per-frame live-byte histogram series (64 B frames). */
constexpr std::size_t frameLiveBuckets = 16;
constexpr double frameLiveBucketBytes = 4.0;

/** Shape of the engine's aging-step-length histogram. */
constexpr std::size_t agingStepBuckets = 16;
constexpr double agingStepBucketMonths = 1.0;

} // anonymous namespace

using hierarchy::CoreActivity;
using hierarchy::coreCycles;
using hierarchy::coreIpc;
using replay::LlcTrace;
using replay::TraceReplayer;
using replay::traceCores;

PhaseAggregate
replayAllTraces(const std::vector<const LlcTrace *> &traces,
                hybrid::HybridLlc &llc,
                const hierarchy::TimingParams &timing,
                double warmup_fraction,
                const replay::TraceReplayer::IntervalCallback &on_interval,
                std::size_t num_intervals)
{
    TraceReplayer replayer(warmup_fraction);
    const double measured_frac = 1.0 - warmup_fraction;

    PhaseAggregate agg;
    double ipc_sum = 0.0;
    std::size_t ipc_count = 0;

    for (const LlcTrace *trace : traces) {
        const replay::ReplayResult res =
            replayer.replay(*trace, llc, on_interval, num_intervals);

        double trace_cycles = 0.0;
        for (std::size_t c = 0; c < traceCores; ++c) {
            const replay::CoreMeta &m = trace->meta().cores[c];
            if (m.refs == 0)
                continue;
            CoreActivity a;
            // Capture-wide private-level counts scaled to the measured
            // window; LLC outcomes are exact for that window.
            a.instructions = static_cast<std::uint64_t>(
                static_cast<double>(m.instructions) * measured_frac);
            a.refs = static_cast<std::uint64_t>(
                static_cast<double>(m.refs) * measured_frac);
            a.l1Hits = static_cast<std::uint64_t>(
                static_cast<double>(m.l1Hits) * measured_frac);
            a.l2Hits = static_cast<std::uint64_t>(
                static_cast<double>(m.l2Hits) * measured_frac);
            a.llcHitsSram = res.cores[c].llcHitsSram;
            a.llcHitsNvm = res.cores[c].llcHitsNvm;
            a.llcMisses = res.cores[c].llcMisses;
            a.nvmWrites = res.cores[c].nvmWrites;
            a.baseCpi = m.baseCpi;

            ipc_sum += coreIpc(a, timing);
            ++ipc_count;
            trace_cycles += coreCycles(a, timing);
        }
        // Cores run in parallel: the window lasts about the mean core
        // time; mixes are time-multiplexed onto the same LLC, so their
        // windows add up.
        agg.measuredSeconds += cyclesToSeconds(static_cast<Cycle>(
            trace_cycles / static_cast<double>(traceCores)));

        agg.demandHits += res.demandHits;
        agg.demandAccesses += res.demandAccesses;
        agg.nvmBytesWritten += res.nvmBytesWritten;
    }

    agg.meanIpc =
        ipc_count == 0 ? 0.0 : ipc_sum / static_cast<double>(ipc_count);
    agg.hitRate = agg.demandAccesses == 0
        ? 0.0
        : static_cast<double>(agg.demandHits) /
          static_cast<double>(agg.demandAccesses);
    return agg;
}

ForecastEngine::ForecastEngine(const fault::EnduranceModel &endurance,
                               const hybrid::HybridLlcConfig &llc_config,
                               std::vector<const LlcTrace *> traces,
                               const hierarchy::TimingParams &timing,
                               const ForecastConfig &config)
    : endurance_(endurance), llcConfig_(llc_config),
      traces_(std::move(traces)), timing_(timing), config_(config),
      stats_("forecast")
{
    // Pre-register so lookups of legitimately-zero counters resolve.
    stats_.counter("simulate_phases");
    stats_.counter("predict_phases");
    stats_.histogram("aging_step_months", agingStepBuckets,
                     agingStepBucketMonths);

    HLLC_ASSERT(!traces_.empty(), "forecast needs at least one trace");
    if (llcConfig_.nvmWays > 0) {
        HLLC_ASSERT(endurance_.geometry().numSets == llcConfig_.numSets &&
                    endurance_.geometry().numNvmWays == llcConfig_.nvmWays,
                    "endurance geometry does not match LLC config");
    }
}

ForecastPoint
ForecastEngine::simulatePhase(hybrid::HybridLlc &llc,
                              fault::FaultMap &map,
                              Seconds now, Seconds &window_seconds,
                              PhaseAggregate &agg_out)
{
    const PhaseAggregate agg = agg_out = replayAllTraces(
        traces_, llc, timing_, config_.warmupFraction);

    // Pending wear covers the full replay (incl. warm-up); scale the
    // measured span accordingly so rates stay consistent.
    window_seconds =
        agg.measuredSeconds / (1.0 - config_.warmupFraction);

    ForecastPoint point;
    point.time = now;
    point.capacity =
        llcConfig_.nvmWays == 0 ? 1.0 : map.effectiveCapacity();
    point.meanIpc = agg.meanIpc;
    point.hitRate = agg.hitRate;
    point.nvmBytesPerSecond = agg.measuredSeconds <= 0.0
        ? 0.0
        : static_cast<double>(agg.nvmBytesWritten) / agg.measuredSeconds;
    return point;
}

void
ForecastEngine::samplePoint(std::size_t step, const ForecastPoint &point,
                            const PhaseAggregate &agg,
                            const hybrid::HybridLlc &llc,
                            const fault::FaultMap &map)
{
    // Series collection is opt-out: cells that never export or
    // checkpoint skip the sampling (and the per-frame wear scan) rather
    // than accumulate data nobody reads.
    if (!config_.collectSeries)
        return;

    // Every value sampled here is a pure function of the replayed trace
    // and simulation state — never of wall clock or checkpoint cadence —
    // so a resumed run's export stays byte-identical to an uninterrupted
    // one.
    metrics_.series("step").append(static_cast<double>(step));
    metrics_.series("time_months").append(point.months());
    metrics_.series("capacity").append(point.capacity);
    metrics_.series("mean_ipc").append(point.meanIpc);
    metrics_.series("hit_rate").append(point.hitRate);
    metrics_.series("nvm_bytes_per_second")
        .append(point.nvmBytesPerSecond);
    metrics_.series("nvm_bytes_written")
        .append(static_cast<double>(agg.nvmBytesWritten));
    metrics_.series("cpth_winner")
        .append(llc.dueling() != nullptr
                    ? static_cast<double>(llc.dueling()->winner())
                    : -1.0);

    if (llcConfig_.nvmWays == 0) {
        metrics_.series("live_frame_fraction").append(1.0);
        return;
    }

    const std::uint32_t frames = map.geometry().numFrames();
    metrics_.series("live_frame_fraction")
        .append(frames == 0
                    ? 1.0
                    : 1.0 - static_cast<double>(map.deadFrames()) /
                                static_cast<double>(frames));

    // Wear-histogram snapshot: how many frames retain how many live
    // bytes (the shape behind the capacity curve, fig 10 style).
    std::vector<std::uint64_t> row(frameLiveBuckets, 0);
    for (std::uint32_t f = 0; f < frames; ++f) {
        const unsigned live = map.liveBytes(f);
        std::size_t bucket = static_cast<std::size_t>(
            static_cast<double>(live) / frameLiveBucketBytes);
        if (bucket >= frameLiveBuckets)
            bucket = frameLiveBuckets - 1;
        ++row[bucket];
    }
    metrics_
        .histogramSeries("frame_live_bytes", frameLiveBuckets,
                         frameLiveBucketBytes)
        .appendRow(std::move(row));
}

void
ForecastEngine::saveCheckpoint(const std::string &path, std::size_t step,
                               Seconds now,
                               const std::vector<ForecastPoint> &series,
                               const fault::FaultMap &map,
                               const hybrid::HybridLlc &llc) const
{
    metrics::ScopedPhaseTimer timer(metrics::Phase::CheckpointWrite);

    HLLC_FAILPOINT("forecast.checkpoint.save");

    serial::Container container;

    serial::Encoder &meta = container.add("meta");
    meta.u32(llcConfig_.numSets);
    meta.u32(llcConfig_.sramWays);
    meta.u32(llcConfig_.nvmWays);
    meta.u32(static_cast<std::uint32_t>(llcConfig_.policy));
    meta.u64(step);
    meta.f64(now);

    serial::Encoder &seri = container.add("seri");
    seri.u64(series.size());
    for (const ForecastPoint &p : series) {
        seri.f64(p.time);
        seri.f64(p.capacity);
        seri.f64(p.meanIpc);
        seri.f64(p.hitRate);
        seri.f64(p.nvmBytesPerSecond);
    }

    if (llcConfig_.nvmWays > 0)
        map.snapshot(container.add("fmap"));
    if (llc.dueling() != nullptr)
        llc.dueling()->snapshot(container.add("duel"));

    // v2: stats and metric series ride along so a resumed run dumps and
    // exports exactly what an uninterrupted one would.
    stats_.snapshot(container.add("stat"));
    llc.stats().snapshot(container.add("lstat"));
    metrics_.snapshot(container.add("mtrc"));

    container.save(path, checkpointMagic, checkpointVersion);
}

std::size_t
ForecastEngine::loadCheckpoint(const std::string &path,
                               fault::FaultMap &map,
                               hybrid::HybridLlc &llc,
                               std::vector<ForecastPoint> &series,
                               Seconds &now)
{
    HLLC_FAILPOINT("forecast.checkpoint.load");
    const serial::Container container = serial::Container::load(
        path, checkpointMagic, checkpointVersion, checkpointVersion);

    serial::Decoder meta = container.open("meta");
    const std::uint32_t num_sets = meta.u32();
    const std::uint32_t sram_ways = meta.u32();
    const std::uint32_t nvm_ways = meta.u32();
    const std::uint32_t policy = meta.u32();
    if (num_sets != llcConfig_.numSets ||
        sram_ways != llcConfig_.sramWays ||
        nvm_ways != llcConfig_.nvmWays ||
        policy != static_cast<std::uint32_t>(llcConfig_.policy)) {
        throw IoError("checkpoint '" + path +
                      "' was taken for a different LLC configuration");
    }
    const std::uint64_t step = meta.u64();
    if (step > config_.maxSteps)
        throw IoError("checkpoint step index out of range");
    const Seconds saved_now = meta.f64();

    serial::Decoder seri = container.open("seri");
    const std::uint64_t count = seri.u64();
    if (count > config_.maxSteps || count * 40 > seri.remaining())
        throw IoError("checkpoint series count is implausible");
    std::vector<ForecastPoint> restored;
    restored.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        ForecastPoint p;
        p.time = seri.f64();
        p.capacity = seri.f64();
        p.meanIpc = seri.f64();
        p.hitRate = seri.f64();
        p.nvmBytesPerSecond = seri.f64();
        restored.push_back(p);
    }

    // Mutations last: a throw above leaves the caller's state untouched,
    // and the subsystem restores below validate before they mutate.
    if (llcConfig_.nvmWays > 0) {
        serial::Decoder fmap = container.open("fmap");
        map.restore(fmap);
    }
    if (llc.dueling() != nullptr) {
        serial::Decoder duel = container.open("duel");
        llc.dueling()->restore(duel);
    }
    serial::Decoder stat = container.open("stat");
    stats_.restore(stat);
    serial::Decoder lstat = container.open("lstat");
    llc.stats().restore(lstat);
    serial::Decoder mtrc = container.open("mtrc");
    metrics_.restore(mtrc);
    series = std::move(restored);
    now = saved_now;
    return static_cast<std::size_t>(step);
}

std::vector<ForecastPoint>
ForecastEngine::run(const RunOptions &options)
{
    const auto policy =
        hybrid::InsertionPolicy::create(llcConfig_.policy,
                                        llcConfig_.params);
    const auto make_map = [&] {
        return std::make_unique<fault::FaultMap>(
            endurance_, policy->granularity(), config_.wearDistribution);
    };
    auto map = make_map();
    auto llc = std::make_unique<hybrid::HybridLlc>(
        llcConfig_, llcConfig_.nvmWays > 0 ? map.get() : nullptr);

    std::vector<ForecastPoint> series;
    Seconds now = 0.0;
    std::size_t step0 = 0;

    // Start from clean observability state; a successful resume
    // overwrites it with the checkpointed series.
    metrics_.clear();
    stats_.resetAll();

    const bool checkpointing = !options.checkpointPath.empty();
    if (checkpointing && options.resume) {
        try {
            step0 = loadCheckpoint(options.checkpointPath, *map, *llc,
                                   series, now);
            debugLog("resumed '%s' at step %zu (t = %.3f months)",
                     options.checkpointPath.c_str(), step0,
                     now / secondsPerMonth);
        } catch (const IoError &e) {
            // A missing/corrupt/mismatched checkpoint must not kill the
            // run — and must not leave half-restored state behind.
            warn("cannot resume from '%s' (%s); restarting from scratch",
                 options.checkpointPath.c_str(), e.what());
            map = make_map();
            llc = std::make_unique<hybrid::HybridLlc>(
                llcConfig_, llcConfig_.nvmWays > 0 ? map.get() : nullptr);
            series.clear();
            metrics_.clear();
            stats_.resetAll();
            now = 0.0;
            step0 = 0;
        }
    }

    const std::size_t every = std::max<std::size_t>(
        options.checkpointEvery, 1);
    std::size_t executed = 0;

    for (std::size_t step = step0; step < config_.maxSteps; ++step) {
        if (checkpointing && interruptRequested()) {
            try {
                saveCheckpoint(options.checkpointPath, step, now, series,
                               *map, *llc);
            } catch (const IoError &e) {
                warn("final checkpoint '%s' failed: %s",
                     options.checkpointPath.c_str(), e.what());
            }
            throw InterruptedError();
        }
        // Watchdog cancellation mirrors the interrupt path: persist,
        // then unwind with the non-retryable deadline error.
        if (options.cancel != nullptr &&
            options.cancel->load(std::memory_order_relaxed)) {
            if (checkpointing) {
                try {
                    saveCheckpoint(options.checkpointPath, step, now,
                                   series, *map, *llc);
                } catch (const IoError &e) {
                    warn("final checkpoint '%s' failed: %s",
                         options.checkpointPath.c_str(), e.what());
                }
            }
            throw DeadlineExceededError(
                "forecast run cancelled by watchdog at step " +
                formatU64(step));
        }
        if (options.stopAfterSteps > 0 &&
            executed >= options.stopAfterSteps) {
            if (checkpointing) {
                saveCheckpoint(options.checkpointPath, step, now, series,
                               *map, *llc);
            }
            return series;
        }
        // A failing periodic save propagates: the user asked for crash
        // safety this run cannot deliver, which is a cell failure, not
        // a warning to scroll past.
        if (checkpointing && step != step0 && (step - step0) % every == 0) {
            saveCheckpoint(options.checkpointPath, step, now, series,
                           *map, *llc);
        }
        ++executed;

        map->discardPending();
        Seconds window_seconds = 0.0;
        PhaseAggregate agg;
        series.push_back(
            simulatePhase(*llc, *map, now, window_seconds, agg));
        ++stats_.counter("simulate_phases");
        samplePoint(step, series.back(), agg, *llc, *map);

        const ForecastPoint &point = series.back();
        if (point.capacity <= config_.capacityFloor ||
            now >= config_.maxTime || llcConfig_.nvmWays == 0 ||
            window_seconds <= 0.0) {
            break;
        }

        // Prediction phase: jump to the next interesting wear state.
        Seconds delta = chooseAgingStep(*map, endurance_, window_seconds,
                                        config_.aging);
        delta = std::min(delta, config_.maxTime - now);
        if (delta <= 0.0)
            break;
        map->age(delta / window_seconds);
        ++stats_.counter("predict_phases");
        stats_.histogram("aging_step_months", agingStepBuckets,
                         agingStepBucketMonths)
            .sample(delta / secondsPerMonth);
        now += delta;
    }
    return series;
}

double
ForecastEngine::lifetimeMonths(const std::vector<ForecastPoint> &series,
                               double capacity_floor)
{
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (series[i].capacity > capacity_floor)
            continue;
        if (i == 0)
            return 0.0;
        const ForecastPoint &a = series[i - 1];
        const ForecastPoint &b = series[i];
        const double span = a.capacity - b.capacity;
        const double frac =
            span <= 0.0 ? 1.0 : (a.capacity - capacity_floor) / span;
        return a.months() + frac * (b.months() - a.months());
    }
    return series.empty() ? 0.0 : series.back().months();
}

double
ForecastEngine::initialIpc(const std::vector<ForecastPoint> &series)
{
    return series.empty() ? 0.0 : series.front().meanIpc;
}

} // namespace hllc::forecast
