#include "forecast/forecast.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hllc::forecast
{

using hierarchy::CoreActivity;
using hierarchy::coreCycles;
using hierarchy::coreIpc;
using replay::LlcTrace;
using replay::TraceReplayer;
using replay::traceCores;

PhaseAggregate
replayAllTraces(const std::vector<const LlcTrace *> &traces,
                hybrid::HybridLlc &llc,
                const hierarchy::TimingParams &timing,
                double warmup_fraction)
{
    TraceReplayer replayer(warmup_fraction);
    const double measured_frac = 1.0 - warmup_fraction;

    PhaseAggregate agg;
    double ipc_sum = 0.0;
    std::size_t ipc_count = 0;

    for (const LlcTrace *trace : traces) {
        const replay::ReplayResult res = replayer.replay(*trace, llc);

        double trace_cycles = 0.0;
        for (std::size_t c = 0; c < traceCores; ++c) {
            const replay::CoreMeta &m = trace->meta().cores[c];
            if (m.refs == 0)
                continue;
            CoreActivity a;
            // Capture-wide private-level counts scaled to the measured
            // window; LLC outcomes are exact for that window.
            a.instructions = static_cast<std::uint64_t>(
                static_cast<double>(m.instructions) * measured_frac);
            a.refs = static_cast<std::uint64_t>(
                static_cast<double>(m.refs) * measured_frac);
            a.l1Hits = static_cast<std::uint64_t>(
                static_cast<double>(m.l1Hits) * measured_frac);
            a.l2Hits = static_cast<std::uint64_t>(
                static_cast<double>(m.l2Hits) * measured_frac);
            a.llcHitsSram = res.cores[c].llcHitsSram;
            a.llcHitsNvm = res.cores[c].llcHitsNvm;
            a.llcMisses = res.cores[c].llcMisses;
            a.nvmWrites = res.cores[c].nvmWrites;
            a.baseCpi = m.baseCpi;

            ipc_sum += coreIpc(a, timing);
            ++ipc_count;
            trace_cycles += coreCycles(a, timing);
        }
        // Cores run in parallel: the window lasts about the mean core
        // time; mixes are time-multiplexed onto the same LLC, so their
        // windows add up.
        agg.measuredSeconds += cyclesToSeconds(static_cast<Cycle>(
            trace_cycles / static_cast<double>(traceCores)));

        agg.demandHits += res.demandHits;
        agg.demandAccesses += res.demandAccesses;
        agg.nvmBytesWritten += res.nvmBytesWritten;
    }

    agg.meanIpc =
        ipc_count == 0 ? 0.0 : ipc_sum / static_cast<double>(ipc_count);
    agg.hitRate = agg.demandAccesses == 0
        ? 0.0
        : static_cast<double>(agg.demandHits) /
          static_cast<double>(agg.demandAccesses);
    return agg;
}

ForecastEngine::ForecastEngine(const fault::EnduranceModel &endurance,
                               const hybrid::HybridLlcConfig &llc_config,
                               std::vector<const LlcTrace *> traces,
                               const hierarchy::TimingParams &timing,
                               const ForecastConfig &config)
    : endurance_(endurance), llcConfig_(llc_config),
      traces_(std::move(traces)), timing_(timing), config_(config)
{
    HLLC_ASSERT(!traces_.empty(), "forecast needs at least one trace");
    if (llcConfig_.nvmWays > 0) {
        HLLC_ASSERT(endurance_.geometry().numSets == llcConfig_.numSets &&
                    endurance_.geometry().numNvmWays == llcConfig_.nvmWays,
                    "endurance geometry does not match LLC config");
    }
}

ForecastPoint
ForecastEngine::simulatePhase(hybrid::HybridLlc &llc,
                              fault::FaultMap &map,
                              Seconds now, Seconds &window_seconds)
{
    const PhaseAggregate agg = replayAllTraces(
        traces_, llc, timing_, config_.warmupFraction);

    // Pending wear covers the full replay (incl. warm-up); scale the
    // measured span accordingly so rates stay consistent.
    window_seconds =
        agg.measuredSeconds / (1.0 - config_.warmupFraction);

    ForecastPoint point;
    point.time = now;
    point.capacity =
        llcConfig_.nvmWays == 0 ? 1.0 : map.effectiveCapacity();
    point.meanIpc = agg.meanIpc;
    point.hitRate = agg.hitRate;
    point.nvmBytesPerSecond = agg.measuredSeconds <= 0.0
        ? 0.0
        : static_cast<double>(agg.nvmBytesWritten) / agg.measuredSeconds;
    return point;
}

std::vector<ForecastPoint>
ForecastEngine::run()
{
    const auto policy =
        hybrid::InsertionPolicy::create(llcConfig_.policy,
                                        llcConfig_.params);
    fault::FaultMap map(endurance_, policy->granularity(),
                        config_.wearDistribution);
    hybrid::HybridLlc llc(llcConfig_,
                          llcConfig_.nvmWays > 0 ? &map : nullptr);

    std::vector<ForecastPoint> series;
    Seconds now = 0.0;

    for (std::size_t step = 0; step < config_.maxSteps; ++step) {
        map.discardPending();
        Seconds window_seconds = 0.0;
        series.push_back(simulatePhase(llc, map, now, window_seconds));

        const ForecastPoint &point = series.back();
        if (point.capacity <= config_.capacityFloor ||
            now >= config_.maxTime || llcConfig_.nvmWays == 0 ||
            window_seconds <= 0.0) {
            break;
        }

        // Prediction phase: jump to the next interesting wear state.
        Seconds delta = chooseAgingStep(map, endurance_, window_seconds,
                                        config_.aging);
        delta = std::min(delta, config_.maxTime - now);
        if (delta <= 0.0)
            break;
        map.age(delta / window_seconds);
        now += delta;
    }
    return series;
}

double
ForecastEngine::lifetimeMonths(const std::vector<ForecastPoint> &series,
                               double capacity_floor)
{
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (series[i].capacity > capacity_floor)
            continue;
        if (i == 0)
            return 0.0;
        const ForecastPoint &a = series[i - 1];
        const ForecastPoint &b = series[i];
        const double span = a.capacity - b.capacity;
        const double frac =
            span <= 0.0 ? 1.0 : (a.capacity - capacity_floor) / span;
        return a.months() + frac * (b.months() - a.months());
    }
    return series.empty() ? 0.0 : series.back().months();
}

double
ForecastEngine::initialIpc(const std::vector<ForecastPoint> &series)
{
    return series.empty() ? 0.0 : series.front().meanIpc;
}

} // namespace hllc::forecast
