/**
 * @file
 * The forecasting procedure (paper Sec. V-A, after [15]): alternate
 * simulation phases (trace replay against the current fault-map state)
 * with prediction phases (analytic wear application over a time jump)
 * to obtain the temporal evolution of performance and NVM capacity,
 * until the NVM part loses half its capacity (or a horizon is reached).
 */

#ifndef HLLC_FORECAST_FORECAST_HH
#define HLLC_FORECAST_FORECAST_HH

#include <atomic>
#include <string>
#include <vector>

#include "common/metrics.hh"
#include "common/stats.hh"
#include "fault/endurance.hh"
#include "forecast/aging.hh"
#include "hierarchy/timing.hh"
#include "hybrid/hybrid_llc.hh"
#include "replay/llc_trace.hh"
#include "replay/replayer.hh"

namespace hllc::forecast
{

/** Forecast controls. */
struct ForecastConfig
{
    /** Stop once NVM effective capacity falls to this fraction. */
    double capacityFloor = 0.5;
    /** Hard horizon. */
    Seconds maxTime = 120.0 * secondsPerMonth;
    /** Safety valve on the simulate/predict loop. */
    std::size_t maxSteps = 400;
    /** Warm-up fraction of each replayed trace. */
    double warmupFraction = 0.2;
    AgingStepConfig aging;
    /** Intra-frame wear model (ablation; the paper assumes Leveled). */
    fault::WearDistribution wearDistribution =
        fault::WearDistribution::Leveled;
    /**
     * Record the per-step metric series (and the frame-wear histogram)
     * while the loop runs. Callers that neither export stats nor
     * checkpoint never read them; sampling costs one histogram pass over
     * every NVM frame per step, so such runs should switch it off.
     * The sampled values themselves stay a pure function of simulation
     * state, so resumed-run exports remain byte-identical.
     */
    bool collectSeries = true;
};

/**
 * Crash-safety controls of one engine run. With a checkpoint path set,
 * the simulate/predict loop persists its complete state (fault map,
 * Set Dueling, time, step index, accumulated series) to that file at
 * every checkpoint boundary via the atomic CRC-checked container of
 * common/serialize.hh, and a pending SIGINT/SIGTERM triggers a final
 * checkpoint before the run unwinds with InterruptedError. Resuming
 * from a checkpoint is byte-identical to never having stopped; a
 * corrupt or mismatched checkpoint is rejected by CRC/validation and
 * the run restarts from scratch with a warning.
 */
struct RunOptions
{
    /** Checkpoint file; empty disables checkpointing. */
    std::string checkpointPath;
    /** Steps between checkpoints (minimum 1). */
    std::size_t checkpointEvery = 1;
    /** Restore from checkpointPath when it holds a valid snapshot. */
    bool resume = false;
    /**
     * Stop (with a checkpoint) after this many simulation phases in
     * this invocation; 0 = run to completion. Used by kill/resume
     * tests and time-budgeted batch runs.
     */
    std::size_t stopAfterSteps = 0;
    /**
     * Cooperative cancellation token (grid watchdogs). When non-null
     * and set, the step loop writes a final checkpoint (when
     * checkpointing) and unwinds with DeadlineExceededError, exactly
     * like the interrupt path but per-run instead of process-wide.
     */
    const std::atomic<bool> *cancel = nullptr;
};

/** One sample of the forecast output. */
struct ForecastPoint
{
    Seconds time = 0.0;
    double capacity = 1.0;      //!< NVM live-byte fraction
    double meanIpc = 0.0;       //!< arithmetic mean over mixes and cores
    double hitRate = 0.0;       //!< LLC demand hit rate over all mixes
    double nvmBytesPerSecond = 0.0;

    double months() const { return time / secondsPerMonth; }
};

/** Aggregate of one simulation phase over a set of traces. */
struct PhaseAggregate
{
    double meanIpc = 0.0;
    double hitRate = 0.0;
    std::uint64_t demandHits = 0;
    std::uint64_t demandAccesses = 0;
    std::uint64_t nvmBytesWritten = 0;
    /** Post-warm-up wall-clock span the phase represents. */
    Seconds measuredSeconds = 0.0;
};

/**
 * Replay every trace in @p traces against @p llc and aggregate hit rate,
 * NVM bytes written and the timing-model IPC (mean over mixes and
 * cores). Wear is recorded in the LLC's fault map as a side effect.
 *
 * With @p on_interval set, each trace's measured window is split into
 * @p num_intervals ranges and the callback fires at every boundary (see
 * replay::TraceReplayer::replay) — the observability hook behind
 * per-interval series exports.
 */
PhaseAggregate
replayAllTraces(const std::vector<const replay::LlcTrace *> &traces,
                hybrid::HybridLlc &llc,
                const hierarchy::TimingParams &timing,
                double warmup_fraction,
                const replay::TraceReplayer::IntervalCallback
                    &on_interval = nullptr,
                std::size_t num_intervals = 0);

class ForecastEngine
{
  public:
    /**
     * @param endurance shared per-byte limits (same fabric across the
     *        policies being compared)
     * @param llc_config LLC geometry + policy under forecast
     * @param traces the workload's captured mixes (all replayed each
     *        simulation phase)
     * @param timing latency model for the IPC estimate
     */
    ForecastEngine(const fault::EnduranceModel &endurance,
                   const hybrid::HybridLlcConfig &llc_config,
                   std::vector<const replay::LlcTrace *> traces,
                   const hierarchy::TimingParams &timing,
                   const ForecastConfig &config);

    /** Run the simulate/predict loop; returns the time series. */
    std::vector<ForecastPoint> run() { return run(RunOptions{}); }

    /**
     * Run with crash-safety options. Returns the full time series (on
     * resume: restored points plus newly simulated ones). Throws
     * InterruptedError after writing a final checkpoint when a
     * SIGINT/SIGTERM flag is pending at a step boundary.
     */
    std::vector<ForecastPoint> run(const RunOptions &options);

    /**
     * Months at which @p series crosses @p capacity_floor (linear
     * interpolation); the horizon of the series if it never does.
     */
    static double lifetimeMonths(const std::vector<ForecastPoint> &series,
                                 double capacity_floor);

    /** Mean IPC of the series' first point (fresh-cache performance). */
    static double initialIpc(const std::vector<ForecastPoint> &series);

    /**
     * Per-step time series sampled by run() (step index, capacity, IPC,
     * hit rate, NVM write traffic, CPth winner, live-frame fraction and
     * the per-frame live-byte histogram). Snapshot/restored through the
     * checkpoint, so a resumed run exports the same series as an
     * uninterrupted one. Valid after run() returns or throws.
     */
    const metrics::MetricRegistry &metrics() const { return metrics_; }

    /** Engine-level stats (phase counts, aging-step histogram). */
    const StatGroup &stats() const { return stats_; }

  private:
    /** One simulation phase; returns the sampled point (capacity at t). */
    ForecastPoint simulatePhase(hybrid::HybridLlc &llc,
                                fault::FaultMap &map,
                                Seconds now, Seconds &window_seconds,
                                PhaseAggregate &agg_out);

    /** Append one forecast step's observability samples to metrics_. */
    void samplePoint(std::size_t step, const ForecastPoint &point,
                     const PhaseAggregate &agg,
                     const hybrid::HybridLlc &llc,
                     const fault::FaultMap &map);

    /** Persist the loop state at a step boundary (atomic container). */
    void saveCheckpoint(const std::string &path, std::size_t step,
                        Seconds now,
                        const std::vector<ForecastPoint> &series,
                        const fault::FaultMap &map,
                        const hybrid::HybridLlc &llc) const;

    /**
     * Restore loop state from @p path; returns the step index to resume
     * at. Throws IoError on corruption or configuration mismatch — the
     * caller rebuilds fresh state in that case. Restores metrics_ and
     * stats_ along with the simulation state.
     */
    std::size_t loadCheckpoint(const std::string &path,
                               fault::FaultMap &map,
                               hybrid::HybridLlc &llc,
                               std::vector<ForecastPoint> &series,
                               Seconds &now);

    const fault::EnduranceModel &endurance_;
    hybrid::HybridLlcConfig llcConfig_;
    std::vector<const replay::LlcTrace *> traces_;
    hierarchy::TimingParams timing_;
    ForecastConfig config_;
    metrics::MetricRegistry metrics_;
    StatGroup stats_;
};

} // namespace hllc::forecast

#endif // HLLC_FORECAST_FORECAST_HH
