/**
 * @file
 * The forecasting procedure (paper Sec. V-A, after [15]): alternate
 * simulation phases (trace replay against the current fault-map state)
 * with prediction phases (analytic wear application over a time jump)
 * to obtain the temporal evolution of performance and NVM capacity,
 * until the NVM part loses half its capacity (or a horizon is reached).
 */

#ifndef HLLC_FORECAST_FORECAST_HH
#define HLLC_FORECAST_FORECAST_HH

#include <vector>

#include "fault/endurance.hh"
#include "forecast/aging.hh"
#include "hierarchy/timing.hh"
#include "hybrid/hybrid_llc.hh"
#include "replay/llc_trace.hh"
#include "replay/replayer.hh"

namespace hllc::forecast
{

/** Forecast controls. */
struct ForecastConfig
{
    /** Stop once NVM effective capacity falls to this fraction. */
    double capacityFloor = 0.5;
    /** Hard horizon. */
    Seconds maxTime = 120.0 * secondsPerMonth;
    /** Safety valve on the simulate/predict loop. */
    std::size_t maxSteps = 400;
    /** Warm-up fraction of each replayed trace. */
    double warmupFraction = 0.2;
    AgingStepConfig aging;
    /** Intra-frame wear model (ablation; the paper assumes Leveled). */
    fault::WearDistribution wearDistribution =
        fault::WearDistribution::Leveled;
};

/** One sample of the forecast output. */
struct ForecastPoint
{
    Seconds time = 0.0;
    double capacity = 1.0;      //!< NVM live-byte fraction
    double meanIpc = 0.0;       //!< arithmetic mean over mixes and cores
    double hitRate = 0.0;       //!< LLC demand hit rate over all mixes
    double nvmBytesPerSecond = 0.0;

    double months() const { return time / secondsPerMonth; }
};

/** Aggregate of one simulation phase over a set of traces. */
struct PhaseAggregate
{
    double meanIpc = 0.0;
    double hitRate = 0.0;
    std::uint64_t demandHits = 0;
    std::uint64_t demandAccesses = 0;
    std::uint64_t nvmBytesWritten = 0;
    /** Post-warm-up wall-clock span the phase represents. */
    Seconds measuredSeconds = 0.0;
};

/**
 * Replay every trace in @p traces against @p llc and aggregate hit rate,
 * NVM bytes written and the timing-model IPC (mean over mixes and
 * cores). Wear is recorded in the LLC's fault map as a side effect.
 */
PhaseAggregate
replayAllTraces(const std::vector<const replay::LlcTrace *> &traces,
                hybrid::HybridLlc &llc,
                const hierarchy::TimingParams &timing,
                double warmup_fraction);

class ForecastEngine
{
  public:
    /**
     * @param endurance shared per-byte limits (same fabric across the
     *        policies being compared)
     * @param llc_config LLC geometry + policy under forecast
     * @param traces the workload's captured mixes (all replayed each
     *        simulation phase)
     * @param timing latency model for the IPC estimate
     */
    ForecastEngine(const fault::EnduranceModel &endurance,
                   const hybrid::HybridLlcConfig &llc_config,
                   std::vector<const replay::LlcTrace *> traces,
                   const hierarchy::TimingParams &timing,
                   const ForecastConfig &config);

    /** Run the simulate/predict loop; returns the time series. */
    std::vector<ForecastPoint> run();

    /**
     * Months at which @p series crosses @p capacity_floor (linear
     * interpolation); the horizon of the series if it never does.
     */
    static double lifetimeMonths(const std::vector<ForecastPoint> &series,
                                 double capacity_floor);

    /** Mean IPC of the series' first point (fresh-cache performance). */
    static double initialIpc(const std::vector<ForecastPoint> &series);

  private:
    /** One simulation phase; returns the sampled point (capacity at t). */
    ForecastPoint simulatePhase(hybrid::HybridLlc &llc,
                                fault::FaultMap &map,
                                Seconds now, Seconds &window_seconds);

    const fault::EnduranceModel &endurance_;
    hybrid::HybridLlcConfig llcConfig_;
    std::vector<const replay::LlcTrace *> traces_;
    hierarchy::TimingParams timing_;
    ForecastConfig config_;
};

} // namespace hllc::forecast

#endif // HLLC_FORECAST_FORECAST_HH
