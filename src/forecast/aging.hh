/**
 * @file
 * Prediction-phase step sizing for the forecasting procedure ([15],
 * adapted in paper Sec. V-A).
 *
 * After a simulation phase measured per-frame byte-write rates over a
 * window of W seconds, the predictor picks the time jump to the next
 * interesting fault-map state: the instant at which roughly a target
 * fraction of the NVM capacity will have worn out, bounded so the
 * IPC/capacity curves keep enough resolution.
 */

#ifndef HLLC_FORECAST_AGING_HH
#define HLLC_FORECAST_AGING_HH

#include "common/types.hh"
#include "fault/fault_map.hh"

namespace hllc::forecast
{

/** Tunables of the prediction phase. */
struct AgingStepConfig
{
    /** Capacity fraction targeted to wear out per step (~resolution). */
    double targetKillFraction = 0.02;
    /** Smallest jump (keeps progress when wear is extreme). */
    Seconds minStep = 60.0;
    /** Largest jump (keeps curve resolution when wear is negligible). */
    Seconds maxStep = 3.0 * secondsPerMonth;
};

/**
 * Choose the next prediction jump.
 *
 * @param map fault map holding pending (un-aged) writes and wear state
 * @param endurance per-byte limits
 * @param window_seconds wall-clock span the pending writes represent
 * @return jump length in seconds, within [minStep, maxStep]
 */
Seconds chooseAgingStep(const fault::FaultMap &map,
                        const fault::EnduranceModel &endurance,
                        Seconds window_seconds,
                        const AgingStepConfig &config);

} // namespace hllc::forecast

#endif // HLLC_FORECAST_AGING_HH
