#include "forecast/aging.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace hllc::forecast
{

Seconds
chooseAgingStep(const fault::FaultMap &map,
                const fault::EnduranceModel &endurance,
                Seconds window_seconds,
                const AgingStepConfig &config)
{
    HLLC_ASSERT(window_seconds > 0.0);

    const auto &geom = map.geometry();
    std::vector<double> ttf;
    ttf.reserve(4096);

    for (std::uint32_t f = 0; f < geom.numFrames(); ++f) {
        const double pending = map.pendingWrites(f);
        if (pending <= 0.0)
            continue;
        const unsigned live = map.liveBytes(f);
        if (live == 0)
            continue;
        // Wear leveling spreads the frame's traffic over its live bytes.
        const double rate = pending / (live * window_seconds);
        const std::uint64_t mask = map.liveMask(f);
        for (unsigned b = 0; b < geom.frameBytes; ++b) {
            if (!(mask & (std::uint64_t{1} << b)))
                continue;
            const double remaining =
                endurance.limit(f, b) - map.writesSoFar(f, b);
            ttf.push_back(remaining <= 0.0 ? 0.0 : remaining / rate);
        }
    }

    if (ttf.empty())
        return config.maxStep;

    // Under frame disabling a single byte death retires 64 bytes, so the
    // same capacity resolution needs 64x fewer byte deaths.
    double kill_fraction = config.targetKillFraction;
    if (map.granularity() == fault::DisableGranularity::Frame)
        kill_fraction /= static_cast<double>(geom.frameBytes);

    const auto total_bytes = static_cast<double>(geom.numBytes());
    std::size_t k = static_cast<std::size_t>(kill_fraction * total_bytes);
    if (k < 1)
        k = 1;

    Seconds step;
    if (k >= ttf.size()) {
        step = config.maxStep;
    } else {
        std::nth_element(ttf.begin(),
                         ttf.begin() + static_cast<std::ptrdiff_t>(k - 1),
                         ttf.end());
        step = ttf[k - 1];
    }

    return std::clamp(step, config.minStep, config.maxStep);
}

} // namespace hllc::forecast
