/**
 * @file
 * Quickstart: build a Table IV system, run one workload mix against the
 * CP_SD hybrid LLC, and print the headline statistics.
 *
 * Usage: quickstart [policy]
 *   policy: BH | BH_CP | CA | CA_RWR | CP_SD | CP_SD_Th | LHybrid | TAP
 *           (default CP_SD)
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/logging.hh"
#include "sim/system.hh"

using namespace hllc;

namespace
{

hybrid::PolicyKind
parsePolicy(const char *name)
{
    using hybrid::PolicyKind;
    static const std::pair<const char *, PolicyKind> table[] = {
        { "BH", PolicyKind::Bh },         { "BH_CP", PolicyKind::BhCp },
        { "CA", PolicyKind::Ca },         { "CA_RWR", PolicyKind::CaRwr },
        { "CP_SD", PolicyKind::CpSd },    { "CP_SD_Th", PolicyKind::CpSdTh },
        { "LHybrid", PolicyKind::LHybrid }, { "TAP", PolicyKind::Tap },
        { "SRAM", PolicyKind::SramOnly },
    };
    for (const auto &[label, kind] : table) {
        if (std::strcmp(name, label) == 0)
            return kind;
    }
    fatal("unknown policy '%s'", name);
}

} // namespace

int
main(int argc, char **argv)
{
    const hybrid::PolicyKind policy =
        argc > 1 ? parsePolicy(argv[1]) : hybrid::PolicyKind::CpSd;

    // 1. A Table IV system (HLLC_SCALE-scaled), running mix 1.
    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    const workload::MixSpec &mix = workload::tableVMixes().front();
    sim::System system(config, mix, policy);

    std::printf("hllc quickstart: %s on %s (%u-set LLC, %uw SRAM + %uw "
                "NVM)\n",
                std::string(system.llc().policy().name()).c_str(),
                mix.name.c_str(), config.llcSets, config.sramWays,
                config.nvmWays);

    // 2. Run the four cores.
    system.run(config.refsPerCore);

    // 3. Report.
    const hybrid::HybridLlc &llc = system.llc();
    std::printf("  LLC demand accesses : %llu\n",
                static_cast<unsigned long long>(llc.demandAccesses()));
    std::printf("  LLC hit rate        : %.4f\n", llc.hitRate());
    std::printf("  hits SRAM / NVM     : %llu / %llu\n",
                static_cast<unsigned long long>(
                    llc.stats().counterValue("gets_hits_sram") +
                    llc.stats().counterValue("getx_hits_sram")),
                static_cast<unsigned long long>(
                    llc.stats().counterValue("gets_hits_nvm") +
                    llc.stats().counterValue("getx_hits_nvm")));
    std::printf("  inserts SRAM / NVM  : %llu / %llu\n",
                static_cast<unsigned long long>(
                    llc.stats().counterValue("inserts_sram")),
                static_cast<unsigned long long>(
                    llc.stats().counterValue("inserts_nvm")));
    std::printf("  NVM bytes written   : %llu\n",
                static_cast<unsigned long long>(llc.nvmBytesWritten()));
    std::printf("  mean IPC            : %.3f\n", system.meanIpc());

    if (const auto *dueling = llc.dueling()) {
        std::printf("  Set Dueling winner  : CPth = %u after %llu "
                    "epochs\n",
                    dueling->winner(),
                    static_cast<unsigned long long>(
                        dueling->epochsCompleted()));
    }

    std::printf("\nFull LLC statistics:\n");
    llc.stats().dump(std::cout);
    return 0;
}
