/**
 * @file
 * Policy comparison at full NVM capacity: replays the ten Table V mixes
 * against every insertion policy and prints hit rate, NVM write traffic
 * and IPC, normalized to the BH baseline (the paper's Sec. II-D
 * motivation study).
 *
 * Usage: policy_comparison [num_mixes]
 */

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace hllc;
using hybrid::PolicyKind;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    const std::size_t num_mixes =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10;

    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    sim::printConfigHeader(config, "policy comparison (100% NVM capacity)");
    const sim::Experiment experiment(config, num_mixes);

    struct Row
    {
        const char *label;
        PolicyKind policy;
        unsigned cpth;      //!< fixed CPth for CA/CA_RWR rows
        unsigned sramWays;  //!< >0: all-SRAM bound with this many ways
    };
    const Row rows[] = {
        { "SRAM-16w", PolicyKind::SramOnly, 0, 16 },
        { "SRAM-4w", PolicyKind::SramOnly, 0, 4 },
        { "BH", PolicyKind::Bh, 0, 0 },
        { "BH_CP", PolicyKind::BhCp, 0, 0 },
        { "LHybrid", PolicyKind::LHybrid, 0, 0 },
        { "TAP", PolicyKind::Tap, 0, 0 },
        { "CA(30)", PolicyKind::Ca, 30, 0 },
        { "CA(58)", PolicyKind::Ca, 58, 0 },
        { "CA(64)", PolicyKind::Ca, 64, 0 },
        { "CA_RWR(30)", PolicyKind::CaRwr, 30, 0 },
        { "CA_RWR(58)", PolicyKind::CaRwr, 58, 0 },
        { "CP_SD", PolicyKind::CpSd, 0, 0 },
        { "CP_SD_Th4", PolicyKind::CpSdTh, 0, 0 },
    };

    // Reference: BH.
    const auto bh =
        experiment.runPhase(config.llcConfig(PolicyKind::Bh), "BH");

    std::printf("\n%-12s %9s %9s %12s %8s %8s %8s\n", "policy",
                "hit rate", "norm.hit", "NVM bytes", "norm.BW", "IPC",
                "norm.IPC");
    for (const Row &row : rows) {
        hybrid::PolicyParams params;
        if (row.policy == PolicyKind::CpSdTh)
            params.thPercent = 4.0;
        if (row.cpth != 0)
            params.fixedCpth = row.cpth;
        const auto llc = row.policy == PolicyKind::SramOnly
            ? config.llcConfigSramBound(row.sramWays)
            : config.llcConfig(row.policy, params);
        const auto res = experiment.runPhase(llc, row.label);
        const auto &agg = res.aggregate;
        const auto &ref = bh.aggregate;
        std::printf("%-12s %9.4f %9.3f %12llu %8.3f %8.3f %8.3f\n",
                    row.label, agg.hitRate,
                    ref.hitRate > 0 ? agg.hitRate / ref.hitRate : 0.0,
                    static_cast<unsigned long long>(agg.nvmBytesWritten),
                    ref.nvmBytesWritten > 0
                        ? static_cast<double>(agg.nvmBytesWritten) /
                          static_cast<double>(ref.nvmBytesWritten)
                        : 0.0,
                    agg.meanIpc,
                    ref.meanIpc > 0 ? agg.meanIpc / ref.meanIpc : 0.0);
    }
    return 0;
}
