/**
 * @file
 * Example: using the compression + fault-tolerance substrate directly.
 *
 * Walks a custom application model's blocks through the full NVM write
 * pipeline of paper Fig. 5: BDI compression -> ECB -> scatter into a
 * partially faulty frame (rearrangement circuitry + wear-leveling
 * rotation) -> gather -> decompress, verifying bit-exact recovery, and
 * reports how the frame's effective capacity constrains which blocks it
 * can still hold as bytes die.
 */

#include <cstdio>

#include "common/logging.hh"
#include "compression/bdi.hh"
#include "fault/rearrangement.hh"
#include "fault/wear_level.hh"
#include "workload/spec_profiles.hh"

using namespace hllc;
using compression::BdiCompressor;

int
main()
{
    setLogLevel(LogLevel::Warn);

    // A frame that has lost 12 bytes to wear (capacity 52 B: holds
    // every encoding up to B4D3, but not B8D7 or raw blocks).
    std::uint64_t live_mask = ~std::uint64_t{0};
    for (unsigned b : { 3u, 7u, 11u, 19u, 23u, 29u, 31u, 41u, 43u,
                        53u, 59u, 61u }) {
        live_mask &= ~(std::uint64_t{1} << b);
    }
    const unsigned capacity =
        static_cast<unsigned>(__builtin_popcountll(live_mask));
    fault::WearLevelCounter rotation(6.0 * 3600.0);
    rotation.elapse(36.0 * 3600.0); // a day and a half of uptime

    std::printf("frame capacity %u/64 bytes, wear-leveling rotation at "
                "byte %u\n\n", capacity, rotation.value());

    workload::AppModel app(workload::profileByName("cactuBSSN17"), 0,
                           2048, Xoshiro256StarStar(7));

    std::printf("%8s %-14s %5s %8s %10s\n", "block", "encoding", "ECB",
                "fits?", "roundtrip");
    unsigned stored = 0, rejected = 0;
    for (Addr block = 0; block < 24; ++block) {
        const BlockData data = app.contentOf(block, 0);
        const auto result = BdiCompressor::compress(data);
        const bool fits = result.ecbBytes <= capacity;

        bool roundtrip = false;
        if (fits) {
            // Paper Fig. 5a-5d: scatter on write, gather on read.
            const auto ecb = BdiCompressor::encode(data, result.ce);
            const auto scattered = fault::RearrangementCircuit::scatter(
                ecb, live_mask, rotation.value());
            const auto gathered = fault::RearrangementCircuit::gather(
                std::span<const std::uint8_t, blockBytes>(
                    scattered.recb),
                live_mask, rotation.value(),
                static_cast<unsigned>(ecb.size()));
            roundtrip =
                BdiCompressor::decode(result.ce, gathered) == data;
            ++stored;
        } else {
            ++rejected;
        }

        std::printf("%8llu %-14s %5u %8s %10s\n",
                    static_cast<unsigned long long>(block),
                    std::string(
                        compression::ceInfo(result.ce).name).c_str(),
                    result.ecbBytes, fits ? "yes" : "no",
                    fits ? (roundtrip ? "ok" : "CORRUPT") : "-");
        HLLC_ASSERT(!fits || roundtrip, "rearrangement corrupted data");
    }

    std::printf("\n%u of %u blocks still usable in this worn frame "
                "(%u rejected would go to SRAM or another frame)\n",
                stored, stored + rejected, rejected);
    return 0;
}
