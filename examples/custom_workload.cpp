/**
 * @file
 * Example: defining a custom application profile and evaluating how the
 * CP_SD insertion policy adapts its compression threshold to it.
 *
 * Builds a deliberately bimodal workload (highly compressible loop data
 * + incompressible streams), runs it behind the private stacks against
 * CP_SD, and prints the Set Dueling winner history — the runtime CPth
 * adaptation of paper Sec. IV-C in action.
 */

#include <cstdio>
#include <map>

#include "common/logging.hh"
#include "sim/system.hh"

using namespace hllc;

int
main()
{
    setLogLevel(LogLevel::Warn);

    // A custom app: small, very compressible loop working set plus a
    // large incompressible streaming footprint and a hot write set.
    workload::AppProfile custom;
    custom.name = "custom_bimodal";
    custom.pLoop = 0.55;
    custom.pStream = 0.35;
    custom.pRandom = 0.10;
    custom.loopFactor = 0.15;
    custom.footprintFactor = 3.0;
    custom.writeFraction = 0.2;
    custom.hcrFraction = 0.65;
    custom.lcrFraction = 0.05;   // bimodal: HCR or incompressible
    custom.memIntensity = 0.35;
    custom.baseCpi = 0.45;

    // Register-free composition: a MixSpec can name stock profiles; for
    // a fully custom app we drive the System's mix machinery with four
    // instances of the same custom profile via a scratch mix.
    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    workload::MixSpec mix{ "custom", { "zeusmp06", "milc06",
                                       "zeusmp06", "milc06" } };

    std::printf("Running a bimodal mix (compressible loops + "
                "incompressible streams) under CP_SD...\n");
    sim::System system(config, mix, hybrid::PolicyKind::CpSd);
    system.run(config.refsPerCore);

    const auto *dueling = system.llc().dueling();
    std::printf("\nLLC hit rate %.4f | NVM bytes written %llu | "
                "mean IPC %.3f\n",
                system.llc().hitRate(),
                static_cast<unsigned long long>(
                    system.llc().nvmBytesWritten()),
                system.meanIpc());

    std::map<unsigned, unsigned> winners;
    for (unsigned w : dueling->winnerHistory())
        ++winners[w];
    std::printf("\nSet Dueling winner distribution over %llu epochs:\n",
                static_cast<unsigned long long>(
                    dueling->epochsCompleted()));
    for (const auto &[cpth, count] : winners) {
        std::printf("  CPth %2u: %5.1f%%\n", cpth,
                    100.0 * count / dueling->winnerHistory().size());
    }
    std::printf("\ncurrent winner: CPth = %u\n", dueling->winner());

    // The custom profile object itself can drive an AppModel directly:
    workload::AppModel app(custom, 0, config.llcBlocks(),
                           Xoshiro256StarStar(1));
    std::printf("\ncustom profile '%s': loop %llu blocks, write set "
                "%llu, footprint %llu\n", custom.name.c_str(),
                static_cast<unsigned long long>(app.loopBlocks()),
                static_cast<unsigned long long>(app.writeBlocks()),
                static_cast<unsigned long long>(app.footprintBlocks()));
    return 0;
}
