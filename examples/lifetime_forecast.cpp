/**
 * @file
 * Lifetime forecast walkthrough (the paper's Fig. 1 methodology): runs
 * the forecasting procedure for a chosen policy and prints the temporal
 * evolution of NVM capacity and IPC until 50% capacity is lost.
 *
 * Usage: lifetime_forecast [policy] [num_mixes]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace hllc;
using hybrid::PolicyKind;

namespace
{

PolicyKind
parsePolicy(const char *name)
{
    static const std::pair<const char *, PolicyKind> table[] = {
        { "BH", PolicyKind::Bh },           { "BH_CP", PolicyKind::BhCp },
        { "CA", PolicyKind::Ca },           { "CA_RWR", PolicyKind::CaRwr },
        { "CP_SD", PolicyKind::CpSd },      { "CP_SD_Th", PolicyKind::CpSdTh },
        { "LHybrid", PolicyKind::LHybrid }, { "TAP", PolicyKind::Tap },
    };
    for (const auto &[label, kind] : table) {
        if (std::strcmp(name, label) == 0)
            return kind;
    }
    fatal("unknown policy '%s'", name);
}

} // namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    const PolicyKind policy =
        argc > 1 ? parsePolicy(argv[1]) : PolicyKind::CpSd;
    const std::size_t num_mixes =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 10;

    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    sim::printConfigHeader(config, "lifetime forecast");
    const sim::Experiment experiment(config, num_mixes);

    const double upper = experiment.upperBoundIpc();
    std::printf("# 16w-SRAM upper-bound IPC: %.4f\n", upper);

    const auto summary = experiment.runForecast(
        config.llcConfig(policy), std::string(hybrid::policyName(policy)));

    std::printf("\n%8s %10s %10s %10s %12s\n", "months", "capacity",
                "IPC", "normIPC", "NVM MB/s");
    for (const auto &point : summary.series) {
        std::printf("%8.2f %10.4f %10.4f %10.4f %12.3f\n",
                    point.months(), point.capacity, point.meanIpc,
                    upper > 0 ? point.meanIpc / upper : 0.0,
                    point.nvmBytesPerSecond / 1e6);
    }
    std::printf("\n%s lifetime (50%% NVM capacity): %.2f months\n",
                summary.label.c_str(), summary.lifetimeMonths);
    return 0;
}
